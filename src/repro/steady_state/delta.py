"""Incremental (delta) steady-state evaluation of mapping moves.

``throughput.analyze()`` walks the whole graph — O(V+E) — for every
candidate mapping, which makes a neighbourhood search round
O(n²·n_pes·(V+E)).  :class:`DeltaAnalyzer` holds the mutable load state of
one mapping and re-evaluates a single-task move (or a task-pair swap) in
O(deg(task) + n_pes), which is what lets ``local_search`` and the
metaheuristics (`simulated_annealing`, `tabu_search`,
`genetic_algorithm`) scale past toy graph sizes.

Since the compiled-kernel refactor the analyzer keeps **no string-keyed
state on the hot path**: construction compiles the graph once (memoized
per :attr:`StreamGraph.version`, see
:mod:`repro.steady_state.compiled`) into integer task ids, CSR
adjacency and flat cost tables, and all bookkeeping below is indexed by
``tid``/``pe``/``eid`` integers.  The public API stays string-keyed —
names are translated at the boundary only.

Each cached quantity corresponds to one family of constraints of the
paper's program (1):

===================  ====================================================
cached state         paper constraint
===================  ====================================================
``compute[pe]``      (1e)/(1f) — compute occupation of each PPE/SPE
``in_bytes[pe]``     (1g) — incoming interface occupation (reads + cross
                     edges landing on the PE)
``out_bytes[pe]``    (1h) — outgoing interface occupation (writes + cross
                     edges leaving the PE)
``buffer[spe]``      (1i) — §4.2 stream-buffer bytes hosted by the SPE's
                     local store
``dma_in[spe]``      (1j) — distinct data received per period (MFC queue)
``dma_proxy[spe]``   (1k) — distinct data pushed to PPEs per period
                     (proxy queue)
``link_bytes``       the bounded-multiport extension of (1g)/(1h) to the
                     inter-Cell BIF link of multi-Cell platforms
===================  ====================================================

The period is ``max`` occupation over all resources, exactly as in
``analyze``; :meth:`DeltaAnalyzer.snapshot` rebuilds a full
:class:`PeriodAnalysis` from the cached state, using the same accumulation
order as ``analyze`` so the two agree bit-for-bit (for graphs whose costs
and payloads are integer-valued floats the incremental updates are exact;
otherwise agreement is within one ulp per update — call :meth:`resync`
to squash any accumulated drift with one O(V+E) rebuild).

Batched neighbourhood scoring
-----------------------------

Search heuristics score *every* target PE for a task before picking one,
so the per-candidate ``score_move`` loop repeats the same O(deg)
neighbour walk ``n_pes`` times.  :meth:`score_moves` /
:meth:`evaluate_moves` score the whole target set in **one pass**: the
task's incident edges are aggregated by neighbour PE once (O(deg)), the
two highest cached peaks outside the origin are found once (O(n_pes)),
and each candidate then costs O(1) arithmetic — no dictionaries, no
re-walk.  :meth:`best_move` applies the same kernel across a whole
move neighbourhood (the ``budgeted_descent`` / online-admission
primitive).  Under the mapping-dependent buffer models (below) a move's
cost is inherently target-dependent (the ``firstPeriod`` cone shifts),
so the batched entry points transparently fall back to the per-candidate
delta path — same results, still integer-indexed.

Mapping-dependent buffer modes
------------------------------

With the paper's default §4.2 model, buffer sizes are mapping-independent
constants and a move only shifts which local store hosts them.  The two
future-work optimisations change that:

* ``elide_local_comm=True`` — the communication period of a same-PE edge
  is skipped, so ``firstPeriod`` (and with it every edge's buffer window
  ``fp[dst] - fp[src]``) depends on the mapping.  A move can shift the
  first periods of the moved task's downstream cone; the analyzer
  propagates the change along a topologically-ordered worklist that stops
  as soon as the values converge, so the cost is O(deg(task)) plus the
  size of the actually-affected region (typically a handful of tasks —
  the fp of a task only moves when the ±1 communication period changes
  the maximum over its predecessors).

* ``merge_same_pe_buffers=True`` — a consumer that shares its producer's
  PE reads straight from the producer's output buffer, so the input copy
  is not allocated.  A move flips the merge status only of the moved
  task's incident edges: O(deg(task)).

In both modes the analyzer keeps per-task footprints (``need``), per-edge
buffer sizes and (under elision) the ``firstPeriod`` vector incrementally,
and per-task footprints are *recomputed* from the incident-edge list in
the same accumulation order as ``periods.buffer_requirements`` — so
:meth:`snapshot` stays bit-identical to
``analyze(..., elide_local_comm=..., merge_same_pe_buffers=...)`` under
the same exactness contract as the default mode.

Multi-application workloads
---------------------------

On a :class:`~repro.graph.workload.CompositeGraph` (several applications
co-scheduled, see :mod:`repro.graph.workload`) the analyzer additionally
maintains **per-application** compute/communication sums and BIF-link
bytes, mirroring the global ones delta for delta — a move updates both in
the same O(deg) pass, and :meth:`app_periods` /
:meth:`snapshot`'s ``app_periods`` reproduce
``analyze(...).app_periods`` bit for bit under the usual exactness
contract.  The ``evaluate_move`` / ``evaluate_swap`` /
``evaluate_changes`` variants thread a pluggable objective
(:mod:`repro.steady_state.objective`) over the same deltas: candidate
per-app periods are derived from cached per-(app, PE) peaks in
O(n_apps × n_pes), so ``weighted`` / ``max_stretch`` search stays
incremental (and batched: a move only perturbs its own application's
sums, so :meth:`evaluate_moves` re-derives one application's period per
candidate and reuses the cached periods of the rest).  Plain
single-application graphs skip all of this.
"""

from __future__ import annotations

import functools
import heapq
import math
from typing import Dict, List, NamedTuple, Optional, Sequence, Set, Tuple

from ..errors import MappingError
from ..obs import metrics as _metrics
from ..obs import tracing as _tracing
from .backend import resolve_backend
from .compiled import CompiledGraph, compile_graph
from .mapping import Mapping
from .objective import PeriodObjective
from .periods import buffer_sizes, first_periods
from .periods import buffer_requirements as _buffer_requirements
from .throughput import (
    LinkLoad,
    PeriodAnalysis,
    ResourceLoad,
    Violation,
    app_periods_from_loads,
)

__all__ = ["ClonePool", "DeltaAnalyzer", "MoveScore", "ObjectiveScore"]


def _traced(name: str):
    """Span-wrap a batch entry point when tracing is on.

    The instrumentation contract (see :mod:`repro.obs`): with tracing
    disabled the wrapper is one module-global read and a branch — no
    span object, no kwargs dict — so decorating the once-per-round
    batch APIs costs nothing measurable on the kernel hot path (the
    nightly overhead guard in ``benchmarks/bench_kernel.py`` bounds
    it).
    """

    def decorate(fn):
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            tracer = _tracing.TRACER
            if tracer is None:
                return fn(*args, **kwargs)
            with tracer.span(name):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


class MoveScore(NamedTuple):
    """Cheap verdict on a candidate mapping (current or hypothetical)."""

    period: float
    feasible: bool
    n_violations: int


class ObjectiveScore(NamedTuple):
    """A :class:`MoveScore` extended with a pluggable objective value.

    ``value`` equals ``period`` under the default period objective; under
    ``weighted`` / ``max_stretch`` it is the objective applied to the
    candidate's per-application periods.  Search heuristics rank
    candidates by ``value`` and gate on ``feasible`` exactly as before.
    """

    value: float
    period: float
    feasible: bool
    n_violations: int


#: Updates to the mapping-dependent buffer model for a set of moves:
#: (fp_new by tid, esize_new by eid, need_new by tid) — only the entries
#: that change.
_BufModel = Tuple[
    Dict[int, int],
    Dict[int, float],
    Dict[int, float],
]

#: Per-application deltas of a set of moves (multi-app composites only):
#: (d_app_compute, d_app_in, d_app_out keyed by (app_idx, pe);
#:  d_app_link, d_app_link_count keyed by (app_idx, (src_cell, dst_cell))).
_AppDeltas = Tuple[
    Dict[Tuple[int, int], float],
    Dict[Tuple[int, int], float],
    Dict[Tuple[int, int], float],
    Dict[Tuple[int, Tuple[int, int]], float],
    Dict[Tuple[int, Tuple[int, int]], int],
]

#: Internal bundle of per-resource deltas for a set of simultaneous moves:
#: (moved by tid, d_compute, d_in, d_out, d_buf, d_dma_in, d_dma_proxy,
#:  d_link_bytes, d_link_count, bufmodel, appdeltas).
_Deltas = Tuple[
    Dict[int, int],
    Dict[int, float],
    Dict[int, float],
    Dict[int, float],
    Dict[int, float],
    Dict[int, int],
    Dict[int, int],
    Dict[Tuple[int, int], float],
    Dict[Tuple[int, int], int],
    Optional[_BufModel],
    Optional[_AppDeltas],
]


class DeltaAnalyzer:
    """Mutable load state of a mapping with O(deg) move evaluation.

    With the default flags this matches ``analyze(mapping)``: buffer sizes
    are the mapping-independent §4.2 constants, so a move only shifts
    which local store hosts them.  With ``elide_local_comm`` and/or
    ``merge_same_pe_buffers`` it matches
    ``analyze(mapping, elide_local_comm=..., merge_same_pe_buffers=...)``
    and additionally maintains the mapping-dependent buffer model
    incrementally (see the module docstring).

    All internal state is integer-indexed over the memoized
    :class:`~repro.steady_state.compiled.CompiledGraph` of the graph; the
    public API speaks task names.
    """

    #: Minimum task-batch size before the dense numpy kernels engage —
    #: single-task sweeps stay on the scalar kernel under every backend
    #: (at n_pes ≤ 18 a dense pass costs more than it saves).
    _VECTOR_MIN_TASKS = 2

    def __init__(
        self,
        mapping: Mapping,
        elide_local_comm: bool = False,
        merge_same_pe_buffers: bool = False,
        backend: Optional[str] = None,
    ) -> None:
        self.graph = mapping.graph
        self.platform = mapping.platform
        self.elide_local_comm = bool(elide_local_comm)
        self.merge_same_pe_buffers = bool(merge_same_pe_buffers)
        self._mapping_dependent = (
            self.elide_local_comm or self.merge_same_pe_buffers
        )
        platform = self.platform
        n = platform.n_pes
        self._n_pes = n
        self._bw = platform.bw
        self._bif_bw = platform.bif_bw
        self._budget = platform.buffer_budget
        self._in_slots = platform.dma_in_slots
        self._proxy_slots = platform.dma_proxy_slots
        self._is_ppe: List[bool] = [platform.is_ppe(i) for i in range(n)]
        self._is_spe: List[bool] = [not p for p in self._is_ppe]
        self._cell: List[int] = [platform.cell_of(i) for i in range(n)]
        self._multi = platform.n_cells > 1

        cg = compile_graph(self.graph)
        self._cg: CompiledGraph = cg
        assign = mapping.to_dict()
        #: tid → hosting PE (the integer-indexed assignment).
        self._pe: List[int] = [assign[name] for name in cg.names]
        #: pe → set of hosted tids, maintained incrementally by ``_apply``
        #: so :meth:`tasks_on` is O(tasks on the PE), not O(V).
        self._members: List[Set[int]] = []

        # Buffer model.  In the default mode ``need`` is the constant §4.2
        # footprint table precompiled into the graph (shared read-only by
        # every analyzer on this graph version); in the mapping-dependent
        # modes it is private mutable state, together with the per-edge
        # sizes and (under elision) the first periods.
        self._fp: Optional[List[int]] = None
        self._esize: Optional[List[float]] = None
        if self._mapping_dependent:
            self._need: List[float] = []
        else:
            self._need = cg.need_default

        # Mutable load state, filled by _rebuild().
        self._compute: List[float] = []
        self._in_bytes: List[float] = []
        self._out_bytes: List[float] = []
        self._peak: List[float] = []
        self._buffer: Dict[int, float] = {}
        self._dma_in: Dict[int, int] = {}
        self._dma_proxy: Dict[int, int] = {}
        self._link_bytes: Dict[Tuple[int, int], float] = {}
        self._link_count: Dict[Tuple[int, int], int] = {}
        self._n_violations = 0
        # Per-application mutable state (composites only), indexed by the
        # compiled application index.
        self._app_compute: List[List[float]] = []
        self._app_in: List[List[float]] = []
        self._app_out: List[List[float]] = []
        self._app_peak: List[List[float]] = []
        self._app_link_bytes: Dict[Tuple[int, Tuple[int, int]], float] = {}
        self._app_link_count: Dict[Tuple[int, Tuple[int, int]], int] = {}
        #: Monotone mutation counter — bumped on every apply/rebuild, so
        #: the numpy kernel can cache its dense state mirrors per state.
        self._state_version = 0

        #: Resolved kernel backend: ``"python"``, ``"numpy"`` or
        #: ``"cython"`` (see :mod:`repro.steady_state.backend` for the
        #: selection rules).  Resolved before the first ``_rebuild`` so
        #: the compiled extension can run the initial accumulation too.
        self.backend: str = resolve_backend(backend)
        reg = _metrics.REGISTRY
        if reg is not None:
            reg.inc("backend_dispatches." + self.backend)
        self._ck = self._make_ckernel()
        self._rebuild()
        self._kernel = self._make_kernel()

    def _make_kernel(self):
        """The dense numpy batch kernel, active under ``numpy`` and —
        when numpy is importable — under ``cython`` too (the extension
        covers the scalar paths, the dense kernels the batch ones)."""
        from .backend import numpy_available

        if self.backend == "numpy" or (
            self.backend == "cython" and numpy_available()
        ):
            from .backend_numpy import NumpyKernel

            return NumpyKernel(self)
        return None

    def _make_ckernel(self):
        if self.backend != "cython":
            return None
        from .backend_cython import CKernel

        return CKernel(self)

    # ------------------------------------------------------------------ #
    # State construction

    def _rebuild_buffer_model(self) -> None:
        """Re-derive the mapping-dependent buffer model through the
        same code paths ``analyze`` uses, so every cached float is
        the exact value the reference computation produces."""
        cg = self._cg
        mapping = self.mapping()
        if self.elide_local_comm:
            fp = first_periods(
                self.graph, mapping, elide_local_comm=True
            )
            self._fp = [fp[name] for name in cg.names]
        esize = buffer_sizes(
            self.graph,
            mapping if self.elide_local_comm else None,
            elide_local_comm=self.elide_local_comm,
        )
        self._esize = [esize[key] for key in cg.edge_keys]
        need = _buffer_requirements(
            self.graph,
            mapping,
            elide_local_comm=self.elide_local_comm,
            merge_same_pe_buffers=self.merge_same_pe_buffers,
        )
        self._need = [need[name] for name in cg.names]

    def _rebuild(self) -> None:
        """Recompute all cached loads from scratch (same order as analyze)."""
        platform = self.platform
        cg = self._cg
        pe_list = self._pe
        n = self._n_pes

        if self._mapping_dependent:
            self._rebuild_buffer_model()

        if self._ck is not None:
            # Native accumulation: identical task/edge/buffer passes in
            # the compiled extension (the buffer model above stays in
            # Python — it is the analyze() reference derivation).
            self._ck.rebuild()
            return

        app_index = cg.app_index
        n_apps = cg.n_apps
        app_compute: List[List[float]] = []
        app_in: List[List[float]] = []
        app_out: List[List[float]] = []
        app_link_bytes: Dict[Tuple[int, Tuple[int, int]], float] = {}
        app_link_count: Dict[Tuple[int, Tuple[int, int]], int] = {}
        if app_index is not None:
            app_compute = [[0.0] * n for _ in range(n_apps)]
            app_in = [[0.0] * n for _ in range(n_apps)]
            app_out = [[0.0] * n for _ in range(n_apps)]

        is_spe, is_ppe, cell = self._is_spe, self._is_ppe, self._cell
        compute = [0.0] * n
        in_bytes = [0.0] * n
        out_bytes = [0.0] * n
        members: List[Set[int]] = [set() for _ in range(n)]
        wppe, wspe, read, write = cg.wppe, cg.wspe, cg.read, cg.write
        for t in range(cg.n):
            pe = pe_list[t]
            members[pe].add(t)
            cost = wppe[t] if is_ppe[pe] else wspe[t]
            compute[pe] += cost
            in_bytes[pe] += read[t]
            out_bytes[pe] += write[t]
            if app_index is not None:
                a = app_index[t]
                app_compute[a][pe] += cost
                app_in[a][pe] += read[t]
                app_out[a][pe] += write[t]

        dma_in = {i: 0 for i in platform.spe_indices}
        dma_proxy = {i: 0 for i in platform.spe_indices}
        link_bytes: Dict[Tuple[int, int], float] = {}
        link_count: Dict[Tuple[int, int], int] = {}
        edge_src, edge_dst, edge_data = cg.edge_src, cg.edge_dst, cg.edge_data
        for e in range(cg.n_edges):
            src_pe = pe_list[edge_src[e]]
            dst_pe = pe_list[edge_dst[e]]
            if src_pe == dst_pe:
                continue
            data = edge_data[e]
            out_bytes[src_pe] += data
            in_bytes[dst_pe] += data
            if app_index is not None:
                a = app_index[edge_src[e]]  # endpoints always share the app
                app_out[a][src_pe] += data
                app_in[a][dst_pe] += data
            if is_spe[dst_pe]:
                dma_in[dst_pe] += 1
            if is_spe[src_pe] and is_ppe[dst_pe]:
                dma_proxy[src_pe] += 1
            if self._multi and cell[src_pe] != cell[dst_pe]:
                key = (cell[src_pe], cell[dst_pe])
                link_bytes[key] = link_bytes.get(key, 0.0) + data
                link_count[key] = link_count.get(key, 0) + 1
                if app_index is not None:
                    akey = (app_index[edge_src[e]], key)
                    app_link_bytes[akey] = (
                        app_link_bytes.get(akey, 0.0) + data
                    )
                    app_link_count[akey] = app_link_count.get(akey, 0) + 1

        buffer = {i: 0.0 for i in platform.spe_indices}
        need = self._need
        for t in range(cg.n):
            pe = pe_list[t]
            if is_spe[pe]:
                buffer[pe] += need[t]

        self._compute, self._in_bytes, self._out_bytes = compute, in_bytes, out_bytes
        self._dma_in, self._dma_proxy = dma_in, dma_proxy
        self._link_bytes, self._link_count = link_bytes, link_count
        self._buffer = buffer
        self._members = members
        bw = self._bw
        self._peak = [
            max(compute[i], in_bytes[i] / bw, out_bytes[i] / bw)
            for i in range(n)
        ]
        if app_index is not None:
            self._app_compute, self._app_in, self._app_out = (
                app_compute, app_in, app_out,
            )
            self._app_link_bytes = app_link_bytes
            self._app_link_count = app_link_count
            self._app_peak = [
                [
                    max(
                        app_compute[a][i],
                        app_in[a][i] / bw,
                        app_out[a][i] / bw,
                    )
                    for i in range(n)
                ]
                for a in range(n_apps)
            ]
        violations = 0
        for spe in platform.spe_indices:
            violations += buffer[spe] > self._budget
            violations += dma_in[spe] > self._in_slots
            violations += dma_proxy[spe] > self._proxy_slots
        self._n_violations = violations

    @_traced("kernel:resync")
    def resync(self) -> None:
        """One O(V+E) rebuild, re-anchoring the incremental state exactly."""
        reg = _metrics.REGISTRY
        if reg is not None:
            reg.inc("resyncs")
        self._state_version += 1
        self._rebuild()

    def clone(self) -> "DeltaAnalyzer":
        """An independent copy sharing only the immutable structure.

        O(V + E + n_pes) flat-list copies, no graph walk — much cheaper
        than building a fresh analyzer and the enabler of population
        metaheuristics (``genetic_algorithm`` clones a parent and applies
        crossover/mutation moves incrementally).
        """
        new = DeltaAnalyzer.__new__(DeltaAnalyzer)
        # Immutable/shared structure (the compiled graph included).
        for attr in (
            "graph", "platform", "elide_local_comm", "merge_same_pe_buffers",
            "_mapping_dependent", "_n_pes", "_bw", "_bif_bw", "_budget",
            "_in_slots", "_proxy_slots", "_is_ppe", "_is_spe", "_cell",
            "_multi", "_cg",
        ):
            setattr(new, attr, getattr(self, attr))
        # Mutable state — private copies.
        new._pe = list(self._pe)
        new._members = [set(s) for s in self._members]
        new._need = (
            list(self._need) if self._mapping_dependent else self._need
        )
        new._fp = list(self._fp) if self._fp is not None else None
        new._esize = list(self._esize) if self._esize is not None else None
        new._compute = list(self._compute)
        new._in_bytes = list(self._in_bytes)
        new._out_bytes = list(self._out_bytes)
        new._peak = list(self._peak)
        new._buffer = dict(self._buffer)
        new._dma_in = dict(self._dma_in)
        new._dma_proxy = dict(self._dma_proxy)
        new._link_bytes = dict(self._link_bytes)
        new._link_count = dict(self._link_count)
        new._n_violations = self._n_violations
        new._app_compute = [list(v) for v in self._app_compute]
        new._app_in = [list(v) for v in self._app_in]
        new._app_out = [list(v) for v in self._app_out]
        new._app_peak = [list(v) for v in self._app_peak]
        new._app_link_bytes = dict(self._app_link_bytes)
        new._app_link_count = dict(self._app_link_count)
        new._state_version = 0
        new.backend = self.backend
        new._ck = new._make_ckernel()
        new._kernel = new._make_kernel()
        return new

    def compatible_with(self, other: "DeltaAnalyzer") -> bool:
        """Whether :meth:`copy_from` may copy ``other`` into this one:
        same compiled graph object, platform, buffer-model flags and
        backend (everything :meth:`clone` shares by reference)."""
        return (
            self._cg is other._cg
            and self.platform is other.platform
            and self.elide_local_comm == other.elide_local_comm
            and self.merge_same_pe_buffers == other.merge_same_pe_buffers
            and self.backend == other.backend
        )

    def copy_from(self, other: "DeltaAnalyzer") -> "DeltaAnalyzer":
        """Overwrite this analyzer's mutable state in place from ``other``.

        The allocation-free sibling of :meth:`clone`: every list is
        slice-assigned and every dict refilled into the existing
        containers, so a pooled analyzer reused across GA generations
        costs no new allocations beyond dict resizes.  Requires
        :meth:`compatible_with`; under the ``cython`` backend the whole
        copy is one native call.
        """
        if not self.compatible_with(other):
            raise MappingError(
                "copy_from requires clones of the same analyzer "
                "(same compiled graph, platform, flags and backend)"
            )
        if self._ck is not None:
            self._ck.copy_state(other)
        else:
            self._pe[:] = other._pe
            for mine, theirs in zip(self._members, other._members):
                mine.clear()
                mine.update(theirs)
            if self._mapping_dependent:
                self._need[:] = other._need
            if other._fp is not None:
                self._fp[:] = other._fp
            if other._esize is not None:
                self._esize[:] = other._esize
            self._compute[:] = other._compute
            self._in_bytes[:] = other._in_bytes
            self._out_bytes[:] = other._out_bytes
            self._peak[:] = other._peak
            for mine_d, theirs_d in (
                (self._buffer, other._buffer),
                (self._dma_in, other._dma_in),
                (self._dma_proxy, other._dma_proxy),
                (self._link_bytes, other._link_bytes),
                (self._link_count, other._link_count),
                (self._app_link_bytes, other._app_link_bytes),
                (self._app_link_count, other._app_link_count),
            ):
                mine_d.clear()
                mine_d.update(theirs_d)
            for mine_rows, theirs_rows in (
                (self._app_compute, other._app_compute),
                (self._app_in, other._app_in),
                (self._app_out, other._app_out),
                (self._app_peak, other._app_peak),
            ):
                for mine_row, theirs_row in zip(mine_rows, theirs_rows):
                    mine_row[:] = theirs_row
            self._n_violations = other._n_violations
        self._state_version += 1
        return self

    # ------------------------------------------------------------------ #
    # Queries

    def _tid(self, task: str) -> int:
        tid = self._cg.index.get(task)
        if tid is None:
            raise MappingError(f"task {task!r} is not mapped")
        return tid

    def pe_of(self, task: str) -> int:
        return self._pe[self._tid(task)]

    def assignment(self) -> Dict[str, int]:
        """A copy of the current task → PE assignment."""
        pe_list = self._pe
        return {name: pe_list[t] for t, name in enumerate(self._cg.names)}

    def tasks_on(self, pe: int) -> List[str]:
        """Names of the tasks currently assigned to ``pe``.

        Mirrors :meth:`Mapping.tasks_on` on the live state (graph
        insertion order) — e.g. the evacuation list when a PE drops out
        of service.  Served from the incrementally-maintained per-PE
        membership sets: O(tasks on the PE), not an O(V) scan.
        """
        if not 0 <= pe < self._n_pes:
            raise MappingError(
                f"invalid PE {pe!r} (platform has {self._n_pes} PEs)"
            )
        names = self._cg.names
        return [names[t] for t in sorted(self._members[pe])]

    def mapping(self) -> Mapping:
        """The current state as an immutable :class:`Mapping`."""
        return Mapping(self.graph, self.platform, self.assignment())

    def period(self) -> float:
        """Current period ``T`` (same value as ``analyze(...).period``)."""
        worst = max(self._peak)
        if self._multi:
            for value in self._link_bytes.values():
                time = value / self._bif_bw
                if time > worst:
                    worst = time
        return worst

    @property
    def feasible(self) -> bool:
        return self._n_violations == 0

    def score(self) -> MoveScore:
        """Score of the *current* state (no hypothetical move)."""
        return MoveScore(
            period=self.period(),
            feasible=self._n_violations == 0,
            n_violations=self._n_violations,
        )

    def app_periods(self) -> Dict[str, float]:
        """Per-application periods of the current state (see ``analyze``).

        Empty for plain (single-application) graphs; for composites, the
        same values ``analyze(self.mapping()).app_periods`` reports,
        read from the incrementally-maintained per-app sums.
        """
        cg = self._cg
        if cg.app_index is None:
            return {}
        app_names = cg.app_names
        return app_periods_from_loads(
            app_names,
            {app: self._app_compute[a] for a, app in enumerate(app_names)},
            {app: self._app_in[a] for a, app in enumerate(app_names)},
            {app: self._app_out[a] for a, app in enumerate(app_names)},
            {
                (app_names[a], key): v
                for (a, key), v in self._app_link_bytes.items()
            },
            self._bw,
            self._bif_bw,
        )

    # ------------------------------------------------------------------ #
    # Delta machinery

    def _buffer_deltas(
        self, moved: Dict[int, int]
    ) -> Tuple[_BufModel, Dict[int, float]]:
        """Mapping-dependent buffer-model updates for applying ``moved``.

        Returns ``((fp_new, esize_new, need_new), d_buf)`` with only the
        entries that actually change.  Cost: O(sum of degrees of the moved
        tasks) plus, under elision, the incident edges of the tasks whose
        ``firstPeriod`` actually shifts.
        """
        cg = self._cg
        pe_list = self._pe
        is_spe = self._is_spe
        out_ptr, out_dst = cg.out_ptr, cg.out_dst
        edge_src, edge_dst = cg.edge_src, cg.edge_dst

        def new_pe(t: int) -> int:
            pe = moved.get(t)
            return pe_list[t] if pe is None else pe

        # 1. Propagate firstPeriod changes (elision only): a move flips
        # the ±1 communication period on the moved tasks' incident edges;
        # the topologically-ordered worklist re-evaluates each affected
        # task once and stops where the values converge.
        fp_new: Dict[int, int] = {}
        if self.elide_local_comm:
            fp = self._fp
            assert fp is not None
            topo, peek = cg.topo_index, cg.peek
            in_ptr, in_src = cg.in_ptr, cg.in_src
            heap: List[Tuple[int, int]] = []
            queued: Set[int] = set()

            def push(t: int) -> None:
                if t not in queued:
                    queued.add(t)
                    heapq.heappush(heap, (topo[t], t))

            for t in moved:
                push(t)
                for k in range(out_ptr[t], out_ptr[t + 1]):
                    push(out_dst[k])
            while heap:
                _, t = heapq.heappop(heap)
                lo, hi = in_ptr[t], in_ptr[t + 1]
                if lo == hi:
                    value = 0
                else:
                    pe = new_pe(t)
                    best = -1
                    for k in range(lo, hi):
                        p = in_src[k]
                        cand = (
                            fp_new.get(p, fp[p])
                            + 1
                            + (0 if new_pe(p) == pe else 1)
                        )
                        if cand > best:
                            best = cand
                    value = best + peek[t]
                if value != fp[t]:
                    fp_new[t] = value
                    for k in range(out_ptr[t], out_ptr[t + 1]):
                        push(out_dst[k])

        # 2. Edge buffer sizes that change: only edges incident to a task
        # whose firstPeriod shifted (a region that shifts uniformly keeps
        # its interior windows — only the boundary edges change size).
        esize_new: Dict[int, float] = {}
        if fp_new:
            fp = self._fp
            esize = self._esize
            assert fp is not None and esize is not None
            edge_data = cg.edge_data
            inc_ptr, inc_eid = cg.inc_ptr, cg.inc_eid
            for t in fp_new:
                for k in range(inc_ptr[t], inc_ptr[t + 1]):
                    e = inc_eid[k]
                    if e in esize_new:
                        continue
                    u, v = edge_src[e], edge_dst[e]
                    size = edge_data[e] * (
                        fp_new.get(v, fp[v]) - fp_new.get(u, fp[u])
                    )
                    if size != esize[e]:
                        esize_new[e] = size

        # 3. Per-task footprints to recompute: endpoints of resized edges,
        # plus (under merging) the moved tasks and their consumers, whose
        # same-PE merge status may flip.
        dirty: Set[int] = set()
        for e in esize_new:
            dirty.add(edge_src[e])
            dirty.add(edge_dst[e])
        if self.merge_same_pe_buffers:
            for t in moved:
                dirty.add(t)
                for k in range(out_ptr[t], out_ptr[t + 1]):
                    dirty.add(out_dst[k])

        need = self._need
        need_new: Dict[int, float] = {}
        if dirty:
            esize = self._esize
            assert esize is not None
            inc_ptr, inc_eid = cg.inc_ptr, cg.inc_eid
            merge = self.merge_same_pe_buffers
            for t in dirty:
                # Same accumulation order as buffer_requirements: incident
                # edges in global edge order, producer side always counted,
                # consumer side skipped when merged — bit-identical sums.
                total = 0.0
                for k in range(inc_ptr[t], inc_ptr[t + 1]):
                    e = inc_eid[k]
                    size = esize_new.get(e)
                    if size is None:
                        size = esize[e]
                    u = edge_src[e]
                    if t == u:
                        total += size
                    else:
                        if merge and new_pe(u) == new_pe(edge_dst[e]):
                            continue
                        total += size
                if total != need[t]:
                    need_new[t] = total

        # 4. Per-SPE buffer deltas: moved tasks change host, dirty
        # residents change footprint in place.
        d_buf: Dict[int, float] = {}
        for t, pe in moved.items():
            old_pe = pe_list[t]
            old_need = need[t]
            if is_spe[old_pe]:
                d_buf[old_pe] = d_buf.get(old_pe, 0.0) - old_need
            if is_spe[pe]:
                d_buf[pe] = d_buf.get(pe, 0.0) + need_new.get(t, old_need)
        for t, value in need_new.items():
            if t in moved:
                continue
            pe = pe_list[t]
            if is_spe[pe]:
                d_buf[pe] = d_buf.get(pe, 0.0) + (value - need[t])

        return (fp_new, esize_new, need_new), d_buf

    def _to_moved(self, changes: Dict[str, int]) -> Dict[int, int]:
        """Validate ``changes`` and translate to a tid-keyed move set."""
        index = self._cg.index
        pe_list = self._pe
        n = self._n_pes
        moved: Dict[int, int] = {}
        for name, pe in changes.items():
            tid = index.get(name)
            if tid is None:
                raise MappingError(f"task {name!r} is not mapped")
            if not 0 <= pe < n:
                raise MappingError(
                    f"task {name!r} moved to invalid PE {pe!r} "
                    f"(platform has {n} PEs)"
                )
            if pe_list[tid] != pe:
                moved[tid] = pe
        return moved

    def _deltas(self, changes: Dict[str, int]) -> Optional[_Deltas]:
        """Per-resource deltas for applying ``changes`` simultaneously.

        O(sum of degrees of the moved tasks) — plus, under
        ``elide_local_comm``, the affected downstream region (see the
        module docstring).  Returns ``None`` when no task actually changes
        PE.
        """
        moved = self._to_moved(changes)
        if not moved:
            return None
        return self._deltas_ids(moved)

    def _deltas_ids(self, moved: Dict[int, int]) -> _Deltas:
        """Deltas for a non-empty, pre-validated tid → PE move set."""
        cg = self._cg
        pe_list = self._pe
        is_ppe, is_spe, cell = self._is_ppe, self._is_spe, self._cell
        app_index = cg.app_index
        wppe, wspe, read, write = cg.wppe, cg.wspe, cg.read, cg.write
        d_compute: Dict[int, float] = {}
        d_in: Dict[int, float] = {}
        d_out: Dict[int, float] = {}
        d_buf: Dict[int, float] = {}
        d_dma_in: Dict[int, int] = {}
        d_dma_proxy: Dict[int, int] = {}
        d_link: Dict[Tuple[int, int], float] = {}
        d_link_n: Dict[Tuple[int, int], int] = {}
        eids: Dict[int, None] = {}
        # Per-application mirrors of the deltas above — only allocated on
        # composites so plain graphs keep the original hot-path cost.
        if app_index is not None:
            da_compute: Dict[Tuple[int, int], float] = {}
            da_in: Dict[Tuple[int, int], float] = {}
            da_out: Dict[Tuple[int, int], float] = {}
            da_link: Dict[Tuple[int, Tuple[int, int]], float] = {}
            da_link_n: Dict[Tuple[int, Tuple[int, int]], int] = {}

        in_ptr, in_eid = cg.in_ptr, cg.in_eid
        out_ptr, out_eid = cg.out_ptr, cg.out_eid
        for t, new_pe in moved.items():
            old_pe = pe_list[t]
            old_cost = wppe[t] if is_ppe[old_pe] else wspe[t]
            new_cost = wppe[t] if is_ppe[new_pe] else wspe[t]
            d_compute[old_pe] = d_compute.get(old_pe, 0.0) - old_cost
            d_compute[new_pe] = d_compute.get(new_pe, 0.0) + new_cost
            d_in[old_pe] = d_in.get(old_pe, 0.0) - read[t]
            d_in[new_pe] = d_in.get(new_pe, 0.0) + read[t]
            d_out[old_pe] = d_out.get(old_pe, 0.0) - write[t]
            d_out[new_pe] = d_out.get(new_pe, 0.0) + write[t]
            if app_index is not None:
                a = app_index[t]
                ko, kn = (a, old_pe), (a, new_pe)
                da_compute[ko] = da_compute.get(ko, 0.0) - old_cost
                da_compute[kn] = da_compute.get(kn, 0.0) + new_cost
                da_in[ko] = da_in.get(ko, 0.0) - read[t]
                da_in[kn] = da_in.get(kn, 0.0) + read[t]
                da_out[ko] = da_out.get(ko, 0.0) - write[t]
                da_out[kn] = da_out.get(kn, 0.0) + write[t]
            if not self._mapping_dependent:
                need = self._need[t]
                if is_spe[old_pe]:
                    d_buf[old_pe] = d_buf.get(old_pe, 0.0) - need
                if is_spe[new_pe]:
                    d_buf[new_pe] = d_buf.get(new_pe, 0.0) + need
            for k in range(in_ptr[t], in_ptr[t + 1]):
                eids[in_eid[k]] = None
            for k in range(out_ptr[t], out_ptr[t + 1]):
                eids[out_eid[k]] = None

        edge_src, edge_dst, edge_data = cg.edge_src, cg.edge_dst, cg.edge_data
        for e in eids:
            u, v, data = edge_src[e], edge_dst[e], edge_data[e]
            old_u, old_v = pe_list[u], pe_list[v]
            new_u, new_v = moved.get(u, old_u), moved.get(v, old_v)
            if old_u != old_v:  # retract the old cross-PE contribution
                d_out[old_u] = d_out.get(old_u, 0.0) - data
                d_in[old_v] = d_in.get(old_v, 0.0) - data
                if app_index is not None:
                    a = app_index[u]  # endpoints always share the app
                    ku, kv = (a, old_u), (a, old_v)
                    da_out[ku] = da_out.get(ku, 0.0) - data
                    da_in[kv] = da_in.get(kv, 0.0) - data
                if is_spe[old_v]:
                    d_dma_in[old_v] = d_dma_in.get(old_v, 0) - 1
                if is_spe[old_u] and is_ppe[old_v]:
                    d_dma_proxy[old_u] = d_dma_proxy.get(old_u, 0) - 1
                if self._multi and cell[old_u] != cell[old_v]:
                    key = (cell[old_u], cell[old_v])
                    d_link[key] = d_link.get(key, 0.0) - data
                    d_link_n[key] = d_link_n.get(key, 0) - 1
                    if app_index is not None:
                        akey = (app_index[u], key)
                        da_link[akey] = da_link.get(akey, 0.0) - data
                        da_link_n[akey] = da_link_n.get(akey, 0) - 1
            if new_u != new_v:  # add the new cross-PE contribution
                d_out[new_u] = d_out.get(new_u, 0.0) + data
                d_in[new_v] = d_in.get(new_v, 0.0) + data
                if app_index is not None:
                    a = app_index[u]
                    ku, kv = (a, new_u), (a, new_v)
                    da_out[ku] = da_out.get(ku, 0.0) + data
                    da_in[kv] = da_in.get(kv, 0.0) + data
                if is_spe[new_v]:
                    d_dma_in[new_v] = d_dma_in.get(new_v, 0) + 1
                if is_spe[new_u] and is_ppe[new_v]:
                    d_dma_proxy[new_u] = d_dma_proxy.get(new_u, 0) + 1
                if self._multi and cell[new_u] != cell[new_v]:
                    key = (cell[new_u], cell[new_v])
                    d_link[key] = d_link.get(key, 0.0) + data
                    d_link_n[key] = d_link_n.get(key, 0) + 1
                    if app_index is not None:
                        akey = (app_index[u], key)
                        da_link[akey] = da_link.get(akey, 0.0) + data
                        da_link_n[akey] = da_link_n.get(akey, 0) + 1

        bufmodel: Optional[_BufModel] = None
        if self._mapping_dependent:
            bufmodel, d_buf = self._buffer_deltas(moved)

        appdeltas: Optional[_AppDeltas] = None
        if app_index is not None:
            appdeltas = (da_compute, da_in, da_out, da_link, da_link_n)

        return (
            moved, d_compute, d_in, d_out, d_buf,
            d_dma_in, d_dma_proxy, d_link, d_link_n, bufmodel, appdeltas,
        )

    def _violation_shift(
        self,
        d_buf: Dict[int, float],
        d_dma_in: Dict[int, int],
        d_dma_proxy: Dict[int, int],
    ) -> int:
        """Net change in the number of violated (1i)–(1k) constraints."""
        shift = 0
        budget, in_slots, proxy_slots = (
            self._budget, self._in_slots, self._proxy_slots,
        )
        for spe, dv in d_buf.items():
            old = self._buffer[spe]
            shift += (old + dv > budget) - (old > budget)
        for spe, dv in d_dma_in.items():
            old = self._dma_in[spe]
            shift += (old + dv > in_slots) - (old > in_slots)
        for spe, dv in d_dma_proxy.items():
            old = self._dma_proxy[spe]
            shift += (old + dv > proxy_slots) - (old > proxy_slots)
        return shift

    def _score(self, deltas: Optional[_Deltas]) -> MoveScore:
        if deltas is None:
            return self.score()
        (_moved, d_compute, d_in, d_out, d_buf,
         d_dma_in, d_dma_proxy, d_link, _d_link_n, _bufmodel,
         _appdeltas) = deltas

        bw = self._bw
        compute, in_bytes, out_bytes = self._compute, self._in_bytes, self._out_bytes
        peak = self._peak
        touched = set(d_compute)
        touched.update(d_in)
        touched.update(d_out)
        worst = 0.0
        for pe in range(self._n_pes):
            if pe in touched:
                value = compute[pe] + d_compute.get(pe, 0.0)
                comm = (in_bytes[pe] + d_in.get(pe, 0.0)) / bw
                if comm > value:
                    value = comm
                comm = (out_bytes[pe] + d_out.get(pe, 0.0)) / bw
                if comm > value:
                    value = comm
            else:
                value = peak[pe]
            if value > worst:
                worst = value
        if self._multi:
            link = self._link_bytes
            keys = set(link)
            keys.update(d_link)
            for key in keys:
                time = (link.get(key, 0.0) + d_link.get(key, 0.0)) / self._bif_bw
                if time > worst:
                    worst = time

        n_violations = self._n_violations + self._violation_shift(
            d_buf, d_dma_in, d_dma_proxy
        )
        return MoveScore(
            period=worst, feasible=n_violations == 0, n_violations=n_violations
        )

    def _candidate_app_periods(
        self, deltas: Optional[_Deltas]
    ) -> Dict[str, float]:
        """Per-app periods of the hypothetical state ``deltas`` describes.

        O(n_apps × n_pes) worst case, but untouched (app, PE) pairs read
        the cached per-app peak, so the common single-move case touches
        a handful of entries.
        """
        if deltas is None or self._cg.app_index is None:
            return self.app_periods()
        appdeltas = deltas[10]
        assert appdeltas is not None
        da_compute, da_in, da_out, da_link, _da_link_n = appdeltas
        touched = set(da_compute)
        touched.update(da_in)
        touched.update(da_out)
        bw = self._bw
        app_names = self._cg.app_names
        out: Dict[str, float] = {}
        for a, app in enumerate(app_names):
            compute = self._app_compute[a]
            in_b, out_b = self._app_in[a], self._app_out[a]
            peak = self._app_peak[a]
            worst = 0.0
            for pe in range(self._n_pes):
                key = (a, pe)
                if key in touched:
                    value = max(
                        compute[pe] + da_compute.get(key, 0.0),
                        (in_b[pe] + da_in.get(key, 0.0)) / bw,
                        (out_b[pe] + da_out.get(key, 0.0)) / bw,
                    )
                else:
                    value = peak[pe]
                if value > worst:
                    worst = value
            out[app] = worst
        if self._multi:
            link = self._app_link_bytes
            keys = set(link)
            keys.update(da_link)
            for akey in keys:
                app = app_names[akey[0]]
                time = (
                    link.get(akey, 0.0) + da_link.get(akey, 0.0)
                ) / self._bif_bw
                if time > out[app]:
                    out[app] = time
        return out

    def _evaluate(self, deltas: Optional[_Deltas], objective) -> ObjectiveScore:
        score = self._score(deltas)
        if objective is None or not getattr(
            objective, "needs_app_periods", False
        ):
            value = (
                score.period
                if objective is None
                else objective.value(score.period, None)
            )
        else:
            value = objective.value(
                score.period, self._candidate_app_periods(deltas)
            )
        return ObjectiveScore(
            value=value,
            period=score.period,
            feasible=score.feasible,
            n_violations=score.n_violations,
        )

    def _apply(self, deltas: Optional[_Deltas]) -> None:
        if deltas is None:
            return
        (moved, d_compute, d_in, d_out, d_buf,
         d_dma_in, d_dma_proxy, d_link, d_link_n, bufmodel,
         appdeltas) = deltas

        self._state_version += 1
        self._n_violations += self._violation_shift(d_buf, d_dma_in, d_dma_proxy)
        pe_list = self._pe
        members = self._members
        for t, pe in moved.items():
            members[pe_list[t]].discard(t)
            members[pe].add(t)
            pe_list[t] = pe
        if bufmodel is not None:
            fp_new, esize_new, need_new = bufmodel
            if fp_new:
                fp = self._fp
                assert fp is not None
                for t, value in fp_new.items():
                    fp[t] = value
            if esize_new:
                esize = self._esize
                assert esize is not None
                for e, value in esize_new.items():
                    esize[e] = value
            if need_new:
                need = self._need
                for t, value in need_new.items():
                    need[t] = value
        for pe, dv in d_compute.items():
            self._compute[pe] += dv
        for pe, dv in d_in.items():
            self._in_bytes[pe] += dv
        for pe, dv in d_out.items():
            self._out_bytes[pe] += dv
        for spe, dv in d_buf.items():
            self._buffer[spe] += dv
        for spe, dv in d_dma_in.items():
            self._dma_in[spe] += dv
        for spe, dv in d_dma_proxy.items():
            self._dma_proxy[spe] += dv
        for key, dv in d_link.items():
            count = self._link_count.get(key, 0) + d_link_n[key]
            if count:
                self._link_count[key] = count
                self._link_bytes[key] = self._link_bytes.get(key, 0.0) + dv
            else:  # no cross-cell edge left on this link direction
                self._link_count.pop(key, None)
                self._link_bytes.pop(key, None)
        bw = self._bw
        touched = set(d_compute)
        touched.update(d_in)
        touched.update(d_out)
        for pe in touched:
            self._peak[pe] = max(
                self._compute[pe],
                self._in_bytes[pe] / bw,
                self._out_bytes[pe] / bw,
            )
        if appdeltas is not None:
            da_compute, da_in, da_out, da_link, da_link_n = appdeltas
            for (a, pe), dv in da_compute.items():
                self._app_compute[a][pe] += dv
            for (a, pe), dv in da_in.items():
                self._app_in[a][pe] += dv
            for (a, pe), dv in da_out.items():
                self._app_out[a][pe] += dv
            for akey, dv in da_link.items():
                count = self._app_link_count.get(akey, 0) + da_link_n[akey]
                if count:
                    self._app_link_count[akey] = count
                    self._app_link_bytes[akey] = (
                        self._app_link_bytes.get(akey, 0.0) + dv
                    )
                else:
                    self._app_link_count.pop(akey, None)
                    self._app_link_bytes.pop(akey, None)
            touched_app = set(da_compute)
            touched_app.update(da_in)
            touched_app.update(da_out)
            for a, pe in touched_app:
                self._app_peak[a][pe] = max(
                    self._app_compute[a][pe],
                    self._app_in[a][pe] / bw,
                    self._app_out[a][pe] / bw,
                )

    # ------------------------------------------------------------------ #
    # Batched neighbourhood kernel

    def _check_pes(self, pes: Sequence[int]) -> None:
        n = self._n_pes
        for pe in pes:
            if not 0 <= pe < n:
                raise MappingError(
                    f"invalid PE {pe!r} (platform has {n} PEs)"
                )

    def _sweep(self, tid: int, pes: Sequence[int], objective, as_objective: bool):
        """Score moving task ``tid`` to every PE in ``pes`` in one pass.

        The batched hot path (default buffer model): the task's incident
        edges are aggregated by neighbour PE once, the two highest cached
        peaks outside the origin are found once, and each candidate then
        costs O(1) arithmetic — identical verdicts to the per-candidate
        ``_deltas`` + ``_score`` path (bit-identical on integer-valued
        graphs, within the usual ulp contract otherwise).  Entries whose
        target equals the origin hold the current-state score.

        With ``as_objective`` the entries are :class:`ObjectiveScore`
        (``objective=None`` meaning the plain period objective), else
        :class:`MoveScore`.  Mapping-dependent modes never reach this —
        the public wrappers fall back to the per-candidate path first.
        """
        cg = self._cg
        pe_list = self._pe
        o = pe_list[tid]
        n = self._n_pes
        is_ppe, is_spe, cell = self._is_ppe, self._is_spe, self._cell
        bw = self._bw
        compute, in_bytes, out_bytes = (
            self._compute, self._in_bytes, self._out_bytes,
        )
        peak = self._peak
        read, write = cg.read[tid], cg.write[tid]
        t_wppe, t_wspe = cg.wppe[tid], cg.wspe[tid]
        cost_o = t_wppe if is_ppe[o] else t_wspe

        # O(deg): incident edges aggregated by neighbour PE.
        F: Dict[int, float] = {}  # producer PE -> bytes into the task
        C: Dict[int, int] = {}  # producer PE -> edge count
        T: Dict[int, float] = {}  # consumer PE -> bytes out of the task
        U: Dict[int, int] = {}  # consumer PE -> edge count
        tin = 0.0
        cin = 0
        in_src, in_data = cg.in_src, cg.in_data
        for k in range(cg.in_ptr[tid], cg.in_ptr[tid + 1]):
            q = pe_list[in_src[k]]
            d = in_data[k]
            F[q] = F.get(q, 0.0) + d
            C[q] = C.get(q, 0) + 1
            tin += d
            cin += 1
        tout = 0.0
        up_cnt = 0  # out-edges whose consumer sits on a PPE (proxy load)
        out_dst, out_data = cg.out_dst, cg.out_data
        for k in range(cg.out_ptr[tid], cg.out_ptr[tid + 1]):
            q = pe_list[out_dst[k]]
            d = out_data[k]
            T[q] = T.get(q, 0.0) + d
            U[q] = U.get(q, 0) + 1
            tout += d
            if is_ppe[q]:
                up_cnt += 1
        # SPEs hosting producers of the task: their proxy queues flip when
        # the task changes PE *kind* (to-PPE pushes appear/disappear).
        spe_srcs = [(q, c) for q, c in C.items() if is_spe[q]]

        # O(n_pes): the two highest cached peaks outside the origin — the
        # "rest" maximum for any candidate is top1 unless the candidate
        # *is* top1's PE, then top2.
        top1 = top2 = 0.0
        top1_pe = -1
        for pe in range(n):
            if pe == o:
                continue
            v = peak[pe]
            if v > top1:
                top2 = top1
                top1, top1_pe = v, pe
            elif v > top2:
                top2 = v
        # After-removal loads at the origin — identical for every target.
        o_compute = compute[o] - cost_o
        o_in = in_bytes[o] - read - (tin - F.get(o, 0.0)) + T.get(o, 0.0)
        o_out = out_bytes[o] - write - (tout - T.get(o, 0.0)) + F.get(o, 0.0)
        val_o = max(o_compute, o_in / bw, o_out / bw)

        need_t = self._need[tid]
        multi = self._multi
        if multi:
            cell_o = cell[o]
            FCell: Dict[int, float] = {}
            TCell: Dict[int, float] = {}
            for q, b in F.items():
                c = cell[q]
                FCell[c] = FCell.get(c, 0.0) + b
            for q, b in T.items():
                c = cell[q]
                TCell[c] = TCell.get(c, 0.0) + b
            link = self._link_bytes
            bif_bw = self._bif_bw

        app_index = cg.app_index
        track_app = (
            as_objective
            and objective is not None
            and getattr(objective, "needs_app_periods", False)
            and app_index is not None
        )
        if track_app:
            a = app_index[tid]
            app_name = cg.app_names[a]
            base_app_periods = self.app_periods()
            a_compute, a_in, a_out = (
                self._app_compute[a], self._app_in[a], self._app_out[a],
            )
            a_peak = self._app_peak[a]
            atop1 = atop2 = 0.0
            atop1_pe = -1
            for pe in range(n):
                if pe == o:
                    continue
                v = a_peak[pe]
                if v > atop1:
                    atop2 = atop1
                    atop1, atop1_pe = v, pe
                elif v > atop2:
                    atop2 = v
            ao_compute = a_compute[o] - cost_o
            ao_in = a_in[o] - read - (tin - F.get(o, 0.0)) + T.get(o, 0.0)
            ao_out = a_out[o] - write - (tout - T.get(o, 0.0)) + F.get(o, 0.0)
            aval_o = max(ao_compute, ao_in / bw, ao_out / bw)
            if multi:
                a_links = [
                    (key, v)
                    for (ai, key), v in self._app_link_bytes.items()
                    if ai == a
                ]
                a_link_keys = {key for key, _v in a_links}

        budget, in_slots, proxy_slots = (
            self._budget, self._in_slots, self._proxy_slots,
        )
        buffer, dmain, dproxy = self._buffer, self._dma_in, self._dma_proxy
        base_viol = self._n_violations
        o_is_spe = is_spe[o]
        o_is_ppe = is_ppe[o]
        # PEs hosting any neighbour of the task: everything off this set
        # takes the constant-delta fast path below.
        nbr = set(F)
        nbr.update(T)
        rt = read + tin  # total new inbound bytes at a non-neighbour target
        wt = write + tout  # total new outbound bytes likewise
        s_flip = -1 if o_is_ppe else 1  # the only possible kind change

        # Origin-side violation shift — constant across same-kind targets,
        # and a second constant across kind-flipping targets.
        def _origin_shift(s: int) -> int:
            shift = 0
            if o_is_spe:
                old = buffer[o]
                shift += (old - need_t > budget) - (old > budget)
                old = dmain[o]
                dv = C.get(o, 0) - cin + U.get(o, 0)
                shift += (old + dv > in_slots) - (old > in_slots)
                dv = -up_cnt + (s * C.get(o, 0) if s else 0)
                old = dproxy[o]
                shift += (old + dv > proxy_slots) - (old > proxy_slots)
            return shift

        base_same = base_viol + _origin_shift(0)
        base_flip: Optional[int] = None  # built lazily with the flip total

        results: list = []
        results_append = results.append
        Fget, Tget, Cget, Uget = F.get, T.get, C.get, U.get
        current = None  # lazily-built current score for target == origin
        for p in pes:
            if p == o:
                if current is None:
                    current = (
                        self._evaluate(None, objective)
                        if as_objective
                        else self.score()
                    )
                results_append(current)
                continue
            p_is_ppe = is_ppe[p]
            in_nbr = p in nbr
            if in_nbr:
                ft = Fget(p, 0.0) + Tget(p, 0.0)
                p_in = in_bytes[p] + rt - ft
                p_out = out_bytes[p] + wt - ft
            else:
                p_in = in_bytes[p] + rt
                p_out = out_bytes[p] + wt
            val_p = compute[p] + (t_wppe if p_is_ppe else t_wspe)
            v = p_in / bw
            if v > val_p:
                val_p = v
            v = p_out / bw
            if v > val_p:
                val_p = v
            worst = top2 if top1_pe == p else top1
            if val_o > worst:
                worst = val_o
            if val_p > worst:
                worst = val_p
            if multi:
                cell_p = cell[p]
                d_link: Dict[Tuple[int, int], float] = {}
                for c, b in FCell.items():
                    if c != cell_o:
                        key = (c, cell_o)
                        d_link[key] = d_link.get(key, 0.0) - b
                    if c != cell_p:
                        key = (c, cell_p)
                        d_link[key] = d_link.get(key, 0.0) + b
                for c, b in TCell.items():
                    if c != cell_o:
                        key = (cell_o, c)
                        d_link[key] = d_link.get(key, 0.0) - b
                    if c != cell_p:
                        key = (cell_p, c)
                        d_link[key] = d_link.get(key, 0.0) + b
                keys = set(link)
                keys.update(d_link)
                for key in keys:
                    time = (link.get(key, 0.0) + d_link.get(key, 0.0)) / bif_bw
                    if time > worst:
                        worst = time

            # Violation shift, dictionary-free: buffers and MFC queues
            # change only at the origin and the target, plus the proxy
            # flip at producer-hosting SPEs on a PPE↔SPE kind change.
            flip = p_is_ppe != o_is_ppe
            if flip:
                if base_flip is None:
                    base_flip = base_viol + _origin_shift(s_flip)
                    for q, c in spe_srcs:
                        if q == o:
                            continue  # combined into the origin term
                        old = dproxy[q]
                        base_flip += (old + s_flip * c > proxy_slots) - (
                            old > proxy_slots
                        )
                nviol = base_flip
            else:
                nviol = base_same
            if not p_is_ppe:
                if need_t:
                    old = buffer[p]
                    nviol += (old + need_t > budget) - (old > budget)
                if in_nbr:
                    cp, up = Cget(p, 0), Uget(p, 0)
                    dv = cin - cp - up
                    if dv:
                        old = dmain[p]
                        nviol += (old + dv > in_slots) - (old > in_slots)
                    old = dproxy[p]
                    dv = up_cnt + (s_flip * cp if flip else 0)
                    if dv:
                        nviol += (old + dv > proxy_slots) - (old > proxy_slots)
                    if flip and cp:
                        # base_flip already counted p's standalone flip
                        # term; replace it with the combined term above.
                        nviol -= (old + s_flip * cp > proxy_slots) - (
                            old > proxy_slots
                        )
                else:
                    if cin:
                        old = dmain[p]
                        nviol += (old + cin > in_slots) - (old > in_slots)
                    if up_cnt:
                        old = dproxy[p]
                        nviol += (old + up_cnt > proxy_slots) - (
                            old > proxy_slots
                        )

            feasible = nviol == 0
            if not as_objective:
                results.append(MoveScore(worst, feasible, nviol))
                continue
            if objective is None:
                value = worst
            elif not track_app:
                value = objective.value(worst, None)
            else:
                ap_compute = a_compute[p] + (t_wppe if p_is_ppe else t_wspe)
                if in_nbr:
                    aft = Fget(p, 0.0) + Tget(p, 0.0)
                    ap_in = a_in[p] + rt - aft
                    ap_out = a_out[p] + wt - aft
                else:
                    ap_in = a_in[p] + rt
                    ap_out = a_out[p] + wt
                aval_p = max(ap_compute, ap_in / bw, ap_out / bw)
                aworst = atop2 if atop1_pe == p else atop1
                if aval_o > aworst:
                    aworst = aval_o
                if aval_p > aworst:
                    aworst = aval_p
                if multi:
                    for key, b in a_links:
                        time = (b + d_link.get(key, 0.0)) / bif_bw
                        if time > aworst:
                            aworst = time
                    for key, dv2 in d_link.items():
                        if key in a_link_keys:
                            continue
                        time = dv2 / bif_bw
                        if time > aworst:
                            aworst = time
                app_periods = dict(base_app_periods)
                app_periods[app_name] = aworst
                value = objective.value(worst, app_periods)
            results.append(ObjectiveScore(value, worst, feasible, nviol))
        return results

    def _sweep_fallback(
        self, tid: int, pes: Sequence[int], objective, as_objective: bool
    ):
        """Per-candidate scoring for the mapping-dependent buffer modes.

        The firstPeriod cone a move shifts depends on the *target* PE, so
        there is no shared precomputation to exploit — each candidate runs
        the (integer-indexed) delta path.  Same result types as
        :meth:`_sweep`.  Under the ``cython`` backend the whole sweep
        runs natively (except for objectives that need per-app periods,
        which stay on the Python delta path).
        """
        if self._ck is not None and (
            objective is None
            or not getattr(objective, "needs_app_periods", False)
        ):
            verdicts = self._ck.sweep(tid, pes)
            if not as_objective:
                return [
                    MoveScore(period=d, feasible=v == 0, n_violations=v)
                    for d, v in verdicts
                ]
            if objective is None:
                return [
                    ObjectiveScore(
                        value=d, period=d, feasible=v == 0, n_violations=v
                    )
                    for d, v in verdicts
                ]
            return [
                ObjectiveScore(
                    value=objective.value(d, None),
                    period=d,
                    feasible=v == 0,
                    n_violations=v,
                )
                for d, v in verdicts
            ]
        pe_list = self._pe
        origin = pe_list[tid]
        out = []
        for pe in pes:
            deltas = None if pe == origin else self._deltas_ids({tid: pe})
            out.append(
                self._evaluate(deltas, objective)
                if as_objective
                else self._score(deltas)
            )
        return out

    # ------------------------------------------------------------------ #
    # Compiled-extension dispatch helpers (``cython`` backend only)

    def _ck_score(self, changes: Dict[str, int]) -> MoveScore:
        moved = self._to_moved(changes)
        if not moved:
            return self.score()
        period, nviol = self._ck.score_ids(moved)
        return MoveScore(
            period=period, feasible=nviol == 0, n_violations=nviol
        )

    def _ck_evaluate(self, changes: Dict[str, int], objective) -> ObjectiveScore:
        score = self._ck_score(changes)
        value = (
            score.period
            if objective is None
            else objective.value(score.period, None)
        )
        return ObjectiveScore(
            value=value,
            period=score.period,
            feasible=score.feasible,
            n_violations=score.n_violations,
        )

    def _ck_apply(self, changes: Dict[str, int]) -> None:
        moved = self._to_moved(changes)
        if moved:
            self._ck.apply_ids(moved)

    # ------------------------------------------------------------------ #
    # Public move/swap API

    def score_move(self, task: str, pe: int) -> MoveScore:
        """Score of the mapping with ``task`` moved to ``pe`` — O(deg(task))."""
        reg = _metrics.REGISTRY
        if reg is not None:
            reg.inc("moves_scored")
        tid = self._tid(task)
        if not 0 <= pe < self._n_pes:
            raise MappingError(
                f"task {task!r} moved to invalid PE {pe!r} "
                f"(platform has {self._n_pes} PEs)"
            )
        if self._ck is not None:
            if pe == self._pe[tid]:
                return self.score()
            period, nviol = self._ck.score_ids({tid: pe})
            return MoveScore(
                period=period, feasible=nviol == 0, n_violations=nviol
            )
        if self._mapping_dependent:
            if pe == self._pe[tid]:
                return self.score()
            return self._score(self._deltas_ids({tid: pe}))
        return self._sweep(tid, (pe,), None, False)[0]

    def score_moves(
        self, task: str, pes: Optional[Sequence[int]] = None
    ) -> List[MoveScore]:
        """Scores of moving ``task`` to each PE in ``pes``, in one pass.

        ``pes`` defaults to every PE of the platform, so the result is
        indexable by PE number; the entry for the task's current PE holds
        the score of the unchanged state.  One O(deg + n_pes) shared
        precomputation plus O(1) per candidate — the full-neighbourhood
        hot path of the search heuristics (see the module docstring).
        """
        tid = self._tid(task)
        if pes is None:
            pes = range(self._n_pes)
        else:
            self._check_pes(pes)
        reg = _metrics.REGISTRY
        if reg is not None:
            reg.inc("moves_scored", len(pes))
        if self._mapping_dependent:
            return self._sweep_fallback(tid, pes, None, False)
        return self._sweep(tid, pes, None, False)

    def score_swap(self, a: str, b: str) -> MoveScore:
        """Score of the mapping with tasks ``a`` and ``b`` exchanging PEs."""
        reg = _metrics.REGISTRY
        if reg is not None:
            reg.inc("swaps_scored")
        changes = {a: self.pe_of(b), b: self.pe_of(a)}
        if self._ck is not None:
            return self._ck_score(changes)
        return self._score(self._deltas(changes))

    def score_changes(self, changes: Dict[str, int]) -> MoveScore:
        """Score of the mapping with all of ``changes`` applied at once.

        ``changes`` maps task names to target PEs; tasks already on their
        target are ignored.  This is the bulk interface population
        metaheuristics use to evaluate crossover offspring in one pass.
        """
        reg = _metrics.REGISTRY
        if reg is not None:
            reg.inc("bulk_changes")
        if self._ck is not None:
            return self._ck_score(dict(changes))
        return self._score(self._deltas(dict(changes)))

    def apply_move(self, task: str, pe: int) -> None:
        """Commit a single-task move into the cached state — O(deg(task))."""
        if self._ck is not None:
            self._ck_apply({task: pe})
            return
        self._apply(self._deltas({task: pe}))

    def apply_swap(self, a: str, b: str) -> None:
        """Commit a task-pair PE exchange into the cached state."""
        changes = {a: self.pe_of(b), b: self.pe_of(a)}
        if self._ck is not None:
            self._ck_apply(changes)
            return
        self._apply(self._deltas(changes))

    @_traced("kernel:apply_changes")
    def apply_changes(self, changes: Dict[str, int]) -> None:
        """Commit a set of simultaneous task moves into the cached state."""
        if self._ck is not None:
            self._ck_apply(dict(changes))
            return
        self._apply(self._deltas(dict(changes)))

    def try_apply_changes(self, changes: Dict[str, int]) -> MoveScore:
        """Score ``changes`` and commit them only when feasible.

        One delta computation serves both the verdict and the commit —
        half the cost of ``score_changes`` + ``apply_changes`` on the
        population-search hot path.  Returns the score of the candidate
        state whether or not it was committed.
        """
        reg = _metrics.REGISTRY
        if reg is not None:
            reg.inc("bulk_changes")
        if self._ck is not None:
            moved = self._to_moved(dict(changes))
            if not moved:
                return self.score()
            period, nviol, _applied = self._ck.try_apply_ids(moved)
            return MoveScore(
                period=period, feasible=nviol == 0, n_violations=nviol
            )
        deltas = self._deltas(dict(changes))
        score = self._score(deltas)
        if score.feasible:
            self._apply(deltas)
        return score

    # ------------------------------------------------------------------ #
    # Objective-aware evaluation (the pluggable-objective hot path)

    def evaluate(self, objective=None) -> ObjectiveScore:
        """Objective score of the *current* state.

        ``objective`` is any object with a ``needs_app_periods`` flag and
        a ``value(period, app_periods)`` method (see
        :mod:`repro.steady_state.objective`); ``None`` means the plain
        period objective.
        """
        return self._evaluate(None, objective)

    def evaluate_move(self, task: str, pe: int, objective=None) -> ObjectiveScore:
        """Objective score with ``task`` moved to ``pe`` — O(deg(task))."""
        reg = _metrics.REGISTRY
        if reg is not None:
            reg.inc("moves_scored")
        tid = self._tid(task)
        if not 0 <= pe < self._n_pes:
            raise MappingError(
                f"task {task!r} moved to invalid PE {pe!r} "
                f"(platform has {self._n_pes} PEs)"
            )
        if self._ck is not None and not getattr(
            objective, "needs_app_periods", False
        ):
            if pe == self._pe[tid]:
                return self._evaluate(None, objective)
            return self._ck_evaluate({task: pe}, objective)
        if self._mapping_dependent:
            deltas = (
                None if pe == self._pe[tid] else self._deltas_ids({tid: pe})
            )
            return self._evaluate(deltas, objective)
        return self._sweep(tid, (pe,), objective, True)[0]

    def evaluate_moves(
        self,
        task: str,
        pes: Optional[Sequence[int]] = None,
        objective=None,
    ) -> List[ObjectiveScore]:
        """Objective scores of moving ``task`` to each PE in ``pes``.

        The objective-aware sibling of :meth:`score_moves` — one shared
        precomputation, O(1) per candidate (plus O(n_apps) dictionary
        assembly when the objective consumes per-application periods —
        a move only perturbs its own application, so the others' cached
        periods are reused verbatim).
        """
        tid = self._tid(task)
        if pes is None:
            pes = range(self._n_pes)
        else:
            self._check_pes(pes)
        reg = _metrics.REGISTRY
        if reg is not None:
            reg.inc("moves_scored", len(pes))
        if self._mapping_dependent:
            return self._sweep_fallback(tid, pes, objective, True)
        return self._sweep(tid, pes, objective, True)

    def evaluate_swap(self, a: str, b: str, objective=None) -> ObjectiveScore:
        """Objective score with tasks ``a`` and ``b`` exchanging PEs."""
        reg = _metrics.REGISTRY
        if reg is not None:
            reg.inc("swaps_scored")
        changes = {a: self.pe_of(b), b: self.pe_of(a)}
        if self._ck is not None and not getattr(
            objective, "needs_app_periods", False
        ):
            return self._ck_evaluate(changes, objective)
        return self._evaluate(self._deltas(changes), objective)

    def evaluate_changes(
        self, changes: Dict[str, int], objective=None
    ) -> ObjectiveScore:
        """Objective score with all of ``changes`` applied at once."""
        reg = _metrics.REGISTRY
        if reg is not None:
            reg.inc("bulk_changes")
        if self._ck is not None and not getattr(
            objective, "needs_app_periods", False
        ):
            return self._ck_evaluate(dict(changes), objective)
        return self._evaluate(self._deltas(dict(changes)), objective)

    @_traced("kernel:best_move")
    def best_move(
        self,
        tasks: Optional[Sequence[str]] = None,
        pes: Optional[Sequence[int]] = None,
        objective=None,
        period_cap: float = math.inf,
    ) -> Optional[Tuple[str, int, ObjectiveScore]]:
        """The best feasible single-task move over a whole neighbourhood.

        Scans ``tasks`` (default: all) × ``pes`` (default: all) through
        the batched kernel and returns ``(task, pe, score)`` for the
        candidate minimising ``(value, period)`` *strictly below* the
        current state's — or ``None`` at a local optimum.  Candidates
        whose period exceeds ``period_cap`` are skipped unless they still
        reduce the current period (the failure-repair descent rule of the
        online runtime).  Ties keep the earliest candidate in visit
        order, matching the historical per-candidate loops move for move.
        """
        current = self.evaluate(objective)
        full = tasks is None, pes is None
        if tasks is None:
            tasks = self._cg.names
        if pes is None:
            pes = range(self._n_pes)
        best: Optional[Tuple[str, int, ObjectiveScore]] = None
        best_key = (current.value, current.period)
        cap = period_cap
        cur_period = current.period
        if (
            self._kernel is not None
            and not self._mapping_dependent
            and len(tasks) >= self._VECTOR_MIN_TASKS
            and (objective is None or isinstance(objective, PeriodObjective))
        ):
            # Dense selection: value == period under the period objective,
            # so one masked argmin finds the earliest-visit-order minimum
            # — the exact candidate the scalar scan keeps.
            import numpy as np

            pes = list(pes)
            if not full[1]:
                self._check_pes(pes)
            reg = _metrics.REGISTRY
            if reg is not None:
                reg.inc("moves_scored", len(tasks) * len(pes))
            res = self._kernel.move_matrix(
                None if full[0] else [self._tid(name) for name in tasks],
                None if full[1] else pes,
                track_app=False,
            )
            ok = ~res.origin & (res.nviol == 0)
            ok &= (res.worst <= cap) | (res.worst < cur_period)
            if not ok.any():
                return None
            cand = np.where(ok, res.worst, np.inf)
            flat = int(np.argmin(cand))
            value = float(cand.flat[flat])
            if not (value, value) < best_key:
                return None
            i, j = divmod(flat, len(pes))
            score = ObjectiveScore(value, value, True, 0)
            return tasks[i], pes[j], score
        for name in tasks:
            origin = self._pe[self._tid(name)]
            scores = self.evaluate_moves(name, pes, objective)
            for pe, score in zip(pes, scores):
                if pe == origin or not score.feasible:
                    continue
                if score.period > cap and score.period >= cur_period:
                    continue
                key = (score.value, score.period)
                if key < best_key:
                    best, best_key = (name, pe, score), key
        return best

    # ------------------------------------------------------------------ #
    # Whole-neighbourhood / population batch API (vectorized backend)

    def _resolve_tasks(
        self, tasks: Optional[Sequence[str]]
    ) -> Tuple[List[int], List[str]]:
        """``tasks`` (default: all, in graph order) as ids + names."""
        if tasks is None:
            names = list(self._cg.names)
            tids = list(range(self._cg.n))
        else:
            names = list(tasks)
            tids = [self._tid(name) for name in names]
        return tids, names

    def _resolve_pes(self, pes: Optional[Sequence[int]]) -> List[int]:
        if pes is None:
            return list(range(self._n_pes))
        pes = list(pes)
        self._check_pes(pes)
        return pes

    @_traced("kernel:score_move_matrix")
    def score_move_matrix(self, tasks=None, pes=None):
        """Periods and violation counts of every (task, PE) move at once.

        Returns ``(period, n_violations)`` shaped ``len(tasks) ×
        len(pes)`` — ndarrays under the numpy backend, nested lists under
        the scalar backend (entries compare equal either way).  Entries
        whose target equals the task's current PE hold the current
        state's period/violations, mirroring :meth:`score_moves`.  This
        is the raw whole-neighbourhood kernel; :meth:`evaluate_all_moves`
        is the objective-aware sibling.
        """
        full = tasks is None, pes is None
        tids, names = self._resolve_tasks(tasks)
        pes = self._resolve_pes(pes)
        if self._kernel is not None and not self._mapping_dependent:
            reg = _metrics.REGISTRY
            if reg is not None:
                reg.inc("moves_scored", len(tids) * len(pes))
            res = self._kernel.move_matrix(
                None if full[0] else tids,
                None if full[1] else pes,
                track_app=False,
            )
            worst, nviol = res.worst, res.nviol
            if res.origin.any():
                cur = self.score()
                worst[res.origin] = cur.period
                nviol[res.origin] = cur.n_violations
            return worst, nviol
        periods: List[List[float]] = []
        viols: List[List[int]] = []
        for name in names:
            scores = self.score_moves(name, pes)
            periods.append([s.period for s in scores])
            viols.append([s.n_violations for s in scores])
        return periods, viols

    @_traced("kernel:evaluate_all_moves")
    def evaluate_all_moves(
        self,
        tasks: Optional[Sequence[str]] = None,
        pes: Optional[Sequence[int]] = None,
        objective=None,
    ) -> List[List[ObjectiveScore]]:
        """Objective scores of every (task, PE) move — one dense pass.

        Row ``i`` equals ``evaluate_moves(tasks[i], pes, objective)``
        exactly (bit-identical on integer-valued graphs); under the numpy
        backend all rows come from a single masked cost-matrix pass
        instead of one kernel sweep per task.
        """
        full = tasks is None, pes is None
        tids, names = self._resolve_tasks(tasks)
        pes = self._resolve_pes(pes)
        if (
            self._kernel is None
            or self._mapping_dependent
            or len(tids) < self._VECTOR_MIN_TASKS
        ):
            return [self.evaluate_moves(name, pes, objective) for name in names]
        reg = _metrics.REGISTRY
        if reg is not None:
            reg.inc("moves_scored", len(tids) * len(pes))
        cg = self._cg
        track_app = (
            objective is not None
            and getattr(objective, "needs_app_periods", False)
            and cg.app_index is not None
        )
        res = self._kernel.move_matrix(
            None if full[0] else tids, None if full[1] else pes, track_app
        )
        base_app = self.app_periods() if track_app else None
        current: Optional[ObjectiveScore] = None
        worst, nviol, origin, aworst = res.worst, res.nviol, res.origin, res.aworst
        rows: List[List[ObjectiveScore]] = []
        for i, tid in enumerate(tids):
            row: List[ObjectiveScore] = []
            for j in range(len(pes)):
                if origin[i, j]:
                    if current is None:
                        current = self._evaluate(None, objective)
                    row.append(current)
                    continue
                w = float(worst[i, j])
                nv = int(nviol[i, j])
                if objective is None:
                    value = w
                elif not track_app:
                    value = objective.value(w, None)
                else:
                    ap = dict(base_app)
                    ap[cg.app_names[cg.app_index[tid]]] = float(aworst[i, j])
                    value = objective.value(w, ap)
                row.append(ObjectiveScore(value, w, nv == 0, nv))
            rows.append(row)
        return rows

    @_traced("kernel:score_swaps")
    def score_swaps(
        self, pairs: Sequence[Tuple[str, str]]
    ) -> List[MoveScore]:
        """Scores of exchanging each task pair's PEs, batched.

        Entry ``k`` equals ``score_swap(*pairs[k])``.  The numpy swap
        kernel covers single-cell platforms under the default buffer
        model; multi-cell platforms and the mapping-dependent modes fall
        back to the per-pair path.
        """
        pairs = [(a, b) for a, b in pairs]
        if (
            self._kernel is None
            or self._mapping_dependent
            or self._multi
            or len(pairs) < self._VECTOR_MIN_TASKS
        ):
            return [self.score_swap(a, b) for a, b in pairs]
        reg = _metrics.REGISTRY
        if reg is not None:
            reg.inc("swaps_scored", len(pairs))
        ta = [self._tid(a) for a, _ in pairs]
        tb = [self._tid(b) for _, b in pairs]
        worst, nviol, same = self._kernel.swap_matrix(ta, tb)
        cur: Optional[MoveScore] = None
        out: List[MoveScore] = []
        for k in range(len(pairs)):
            if same[k]:
                if cur is None:
                    cur = self.score()
                out.append(cur)
                continue
            nv = int(nviol[k])
            out.append(MoveScore(float(worst[k]), nv == 0, nv))
        return out

    @_traced("kernel:evaluate_swaps")
    def evaluate_swaps(
        self, pairs: Sequence[Tuple[str, str]], objective=None
    ) -> List[ObjectiveScore]:
        """Objective scores of each task-pair PE exchange, batched.

        Entry ``k`` equals ``evaluate_swap(*pairs[k], objective)``.
        Objectives consuming per-application periods fall back to the
        per-pair path (a swap may perturb two applications at once, so
        there is no single-app shortcut to vectorize).
        """
        pairs = [(a, b) for a, b in pairs]
        if (
            self._kernel is None
            or self._mapping_dependent
            or self._multi
            or len(pairs) < self._VECTOR_MIN_TASKS
            or (
                objective is not None
                and getattr(objective, "needs_app_periods", False)
            )
        ):
            return [self.evaluate_swap(a, b, objective) for a, b in pairs]
        reg = _metrics.REGISTRY
        if reg is not None:
            reg.inc("swaps_scored", len(pairs))
        ta = [self._tid(a) for a, _ in pairs]
        tb = [self._tid(b) for _, b in pairs]
        worst, nviol, same = self._kernel.swap_matrix(ta, tb)
        cur: Optional[ObjectiveScore] = None
        out: List[ObjectiveScore] = []
        for k in range(len(pairs)):
            if same[k]:
                if cur is None:
                    cur = self._evaluate(None, objective)
                out.append(cur)
                continue
            w = float(worst[k])
            nv = int(nviol[k])
            value = w if objective is None else objective.value(w, None)
            out.append(ObjectiveScore(value, w, nv == 0, nv))
        return out

    def _assignment_rows(self, assignments: Sequence[Dict[str, int]]):
        """Candidate full mappings as a (K, n) PE matrix, validated."""
        import numpy as np

        P = np.tile(
            np.asarray(self._pe, dtype=np.int64), (len(assignments), 1)
        )
        index = self._cg.index
        n = self._n_pes
        for k, changes in enumerate(assignments):
            for name, pe in changes.items():
                tid = index.get(name)
                if tid is None:
                    raise MappingError(f"task {name!r} is not mapped")
                if not 0 <= pe < n:
                    raise MappingError(
                        f"task {name!r} moved to invalid PE {pe!r} "
                        f"(platform has {n} PEs)"
                    )
                P[k, tid] = pe
        return P

    @_traced("kernel:score_assignments")
    def score_assignments(
        self, assignments: Sequence[Dict[str, int]]
    ) -> List[MoveScore]:
        """Scores of K whole candidate mappings — one population pass.

        Each element of ``assignments`` is a change set relative to the
        current state (``{}`` scores the state itself); entry ``k``
        equals ``score_changes(assignments[k])``.  Under the numpy
        backend the K clones are scored by a single from-scratch matrix
        pass — the GA's generation-evaluation hot path.
        """
        assignments = [dict(ch) for ch in assignments]
        if (
            self._kernel is None
            or self._mapping_dependent
            or len(assignments) < self._VECTOR_MIN_TASKS
        ):
            return [self.score_changes(ch) for ch in assignments]
        reg = _metrics.REGISTRY
        if reg is not None:
            reg.inc("bulk_changes", len(assignments))
        P = self._assignment_rows(assignments)
        period, nviol, _apps = self._kernel.assignment_matrix(P, False)
        out: List[MoveScore] = []
        for k in range(len(assignments)):
            nv = int(nviol[k])
            out.append(MoveScore(float(period[k]), nv == 0, nv))
        return out

    @_traced("kernel:evaluate_assignments")
    def evaluate_assignments(
        self,
        assignments: Sequence[Dict[str, int]],
        objective=None,
    ) -> List[ObjectiveScore]:
        """Objective scores of K whole candidate mappings, batched.

        Entry ``k`` equals ``evaluate_changes(assignments[k],
        objective)``; per-application periods (when the objective needs
        them) come from the same population pass.
        """
        assignments = [dict(ch) for ch in assignments]
        cg = self._cg
        needs_apps = objective is not None and getattr(
            objective, "needs_app_periods", False
        )
        if (
            self._kernel is None
            or self._mapping_dependent
            or len(assignments) < self._VECTOR_MIN_TASKS
            or (needs_apps and cg.app_index is None)
        ):
            return [
                self.evaluate_changes(ch, objective) for ch in assignments
            ]
        reg = _metrics.REGISTRY
        if reg is not None:
            reg.inc("bulk_changes", len(assignments))
        P = self._assignment_rows(assignments)
        period, nviol, app_mat = self._kernel.assignment_matrix(
            P, needs_apps
        )
        out: List[ObjectiveScore] = []
        for k in range(len(assignments)):
            w = float(period[k])
            nv = int(nviol[k])
            if objective is None:
                value = w
            elif needs_apps:
                ap = {
                    app: float(app_mat[k, a])
                    for a, app in enumerate(cg.app_names)
                }
                value = objective.value(w, ap)
            else:
                value = objective.value(w, None)
            out.append(ObjectiveScore(value, w, nv == 0, nv))
        return out

    # ------------------------------------------------------------------ #
    # Full analysis

    def snapshot(self) -> PeriodAnalysis:
        """A full :class:`PeriodAnalysis` of the current state.

        Field-for-field identical to ``analyze(self.mapping(),
        elide_local_comm=..., merge_same_pe_buffers=...)`` with this
        analyzer's flags (see the module docstring for the exactness
        guarantee), built in O(V + n_pes) without re-walking the edges.
        """
        platform = self.platform
        bw = self._bw
        loads = [
            ResourceLoad(
                pe=i,
                pe_name=platform.pe_name(i),
                compute=self._compute[i],
                comm_in=self._in_bytes[i] / bw,
                comm_out=self._out_bytes[i] / bw,
            )
            for i in range(self._n_pes)
        ]
        buffer_bytes = {i: self._buffer[i] for i in platform.spe_indices}
        dma_in = {i: self._dma_in[i] for i in platform.spe_indices}
        dma_proxy = {i: self._dma_proxy[i] for i in platform.spe_indices}
        violations: List[Violation] = []
        for spe in platform.spe_indices:
            pe_name = platform.pe_name(spe)
            if buffer_bytes[spe] > self._budget:
                violations.append(
                    Violation("memory", spe, pe_name, buffer_bytes[spe], self._budget)
                )
            if dma_in[spe] > self._in_slots:
                violations.append(
                    Violation("dma_in", spe, pe_name, dma_in[spe], self._in_slots)
                )
            if dma_proxy[spe] > self._proxy_slots:
                violations.append(
                    Violation(
                        "dma_proxy", spe, pe_name, dma_proxy[spe], self._proxy_slots
                    )
                )
        link_loads = [
            LinkLoad(src_cell=src, dst_cell=dst, time=bytes_ / self._bif_bw)
            for (src, dst), bytes_ in sorted(self._link_bytes.items())
        ]
        return PeriodAnalysis(
            mapping=self.mapping(),
            loads=loads,
            buffer_bytes=buffer_bytes,
            dma_in=dma_in,
            dma_proxy=dma_proxy,
            violations=violations,
            link_loads=link_loads,
            app_periods=self.app_periods(),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flags = []
        if self.elide_local_comm:
            flags.append("elide_local_comm")
        if self.merge_same_pe_buffers:
            flags.append("merge_same_pe_buffers")
        suffix = f", {'+'.join(flags)}" if flags else ""
        return (
            f"DeltaAnalyzer({self.graph.name!r}, period={self.period():.3f}, "
            f"violations={self._n_violations}{suffix})"
        )


class ClonePool:
    """Free-list of :class:`DeltaAnalyzer` clones reused across
    generations.

    Population metaheuristics allocate one clone per offspring per
    generation and drop the whole previous generation on the floor; the
    pool instead recycles retired analyzers through
    :meth:`DeltaAnalyzer.copy_from` (array slice-assignment, one native
    call under the ``cython`` backend) so steady-state GA generations
    allocate nothing but dict resizes.  Retired analyzers whose
    structure no longer matches the parent (different compiled graph,
    platform, flags or backend) are discarded on reuse.
    """

    __slots__ = ("_free", "max_free")

    def __init__(self, max_free: int = 256) -> None:
        self._free: List[DeltaAnalyzer] = []
        #: Retired analyzers beyond this many are dropped (a workload
        #: change can orphan a whole generation of incompatible clones).
        self.max_free = max_free

    def __len__(self) -> int:
        return len(self._free)

    def clone(self, parent: DeltaAnalyzer) -> DeltaAnalyzer:
        """A state-copy of ``parent`` — recycled when possible."""
        reg = _metrics.REGISTRY
        free = self._free
        while free:
            candidate = free.pop()
            if candidate.compatible_with(parent):
                if reg is not None:
                    reg.inc("clone_pool_hits")
                return candidate.copy_from(parent)
        if reg is not None:
            reg.inc("clone_pool_misses")
        return parent.clone()

    def retire(self, analyzer: DeltaAnalyzer) -> None:
        """Hand an analyzer back for reuse; its state may be clobbered
        by any later :meth:`clone` call."""
        if len(self._free) < self.max_free:
            self._free.append(analyzer)
