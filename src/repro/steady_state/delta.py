"""Incremental (delta) steady-state evaluation of mapping moves.

``throughput.analyze()`` walks the whole graph — O(V+E) — for every
candidate mapping, which makes a neighbourhood search round
O(n²·n_pes·(V+E)).  :class:`DeltaAnalyzer` holds the mutable load state of
one mapping and re-evaluates a single-task move (or a task-pair swap) in
O(deg(task) + n_pes), which is what lets ``local_search`` and the
metaheuristics (`simulated_annealing`, `tabu_search`,
`genetic_algorithm`) scale past toy graph sizes.

Each cached quantity corresponds to one family of constraints of the
paper's program (1):

===================  ====================================================
cached state         paper constraint
===================  ====================================================
``compute[pe]``      (1e)/(1f) — compute occupation of each PPE/SPE
``in_bytes[pe]``     (1g) — incoming interface occupation (reads + cross
                     edges landing on the PE)
``out_bytes[pe]``    (1h) — outgoing interface occupation (writes + cross
                     edges leaving the PE)
``buffer[spe]``      (1i) — §4.2 stream-buffer bytes hosted by the SPE's
                     local store
``dma_in[spe]``      (1j) — distinct data received per period (MFC queue)
``dma_proxy[spe]``   (1k) — distinct data pushed to PPEs per period
                     (proxy queue)
``link_bytes``       the bounded-multiport extension of (1g)/(1h) to the
                     inter-Cell BIF link of multi-Cell platforms
===================  ====================================================

The period is ``max`` occupation over all resources, exactly as in
``analyze``; :meth:`DeltaAnalyzer.snapshot` rebuilds a full
:class:`PeriodAnalysis` from the cached state, using the same accumulation
order as ``analyze`` so the two agree bit-for-bit (for graphs whose costs
and payloads are integer-valued floats the incremental updates are exact;
otherwise agreement is within one ulp per update — call :meth:`resync`
to squash any accumulated drift with one O(V+E) rebuild).

Mapping-dependent buffer modes
------------------------------

With the paper's default §4.2 model, buffer sizes are mapping-independent
constants and a move only shifts which local store hosts them.  The two
future-work optimisations change that:

* ``elide_local_comm=True`` — the communication period of a same-PE edge
  is skipped, so ``firstPeriod`` (and with it every edge's buffer window
  ``fp[dst] - fp[src]``) depends on the mapping.  A move can shift the
  first periods of the moved task's downstream cone; the analyzer
  propagates the change along a topologically-ordered worklist that stops
  as soon as the values converge, so the cost is O(deg(task)) plus the
  size of the actually-affected region (typically a handful of tasks —
  the fp of a task only moves when the ±1 communication period changes
  the maximum over its predecessors).

* ``merge_same_pe_buffers=True`` — a consumer that shares its producer's
  PE reads straight from the producer's output buffer, so the input copy
  is not allocated.  A move flips the merge status only of the moved
  task's incident edges: O(deg(task)).

In both modes the analyzer keeps per-task footprints (``need``), per-edge
buffer sizes and (under elision) the ``firstPeriod`` vector incrementally,
and per-task footprints are *recomputed* from the incident-edge list in
the same accumulation order as ``periods.buffer_requirements`` — so
:meth:`snapshot` stays bit-identical to
``analyze(..., elide_local_comm=..., merge_same_pe_buffers=...)`` under
the same exactness contract as the default mode.

Multi-application workloads
---------------------------

On a :class:`~repro.graph.workload.CompositeGraph` (several applications
co-scheduled, see :mod:`repro.graph.workload`) the analyzer additionally
maintains **per-application** compute/communication sums and BIF-link
bytes, mirroring the global ones delta for delta — a move updates both in
the same O(deg) pass, and :meth:`app_periods` /
:meth:`snapshot`'s ``app_periods`` reproduce
``analyze(...).app_periods`` bit for bit under the usual exactness
contract.  The ``evaluate_move`` / ``evaluate_swap`` /
``evaluate_changes`` variants thread a pluggable objective
(:mod:`repro.steady_state.objective`) over the same deltas: candidate
per-app periods are derived from cached per-(app, PE) peaks in
O(n_apps × n_pes), so ``weighted`` / ``max_stretch`` search stays
incremental.  Plain single-application graphs skip all of this.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, NamedTuple, Optional, Set, Tuple

from ..errors import MappingError
from .mapping import Mapping
from .periods import buffer_requirements, buffer_sizes, first_periods
from .throughput import (
    LinkLoad,
    PeriodAnalysis,
    ResourceLoad,
    Violation,
    app_periods_from_loads,
)

__all__ = ["DeltaAnalyzer", "MoveScore", "ObjectiveScore"]


class MoveScore(NamedTuple):
    """Cheap verdict on a candidate mapping (current or hypothetical)."""

    period: float
    feasible: bool
    n_violations: int


class ObjectiveScore(NamedTuple):
    """A :class:`MoveScore` extended with a pluggable objective value.

    ``value`` equals ``period`` under the default period objective; under
    ``weighted`` / ``max_stretch`` it is the objective applied to the
    candidate's per-application periods.  Search heuristics rank
    candidates by ``value`` and gate on ``feasible`` exactly as before.
    """

    value: float
    period: float
    feasible: bool
    n_violations: int


#: Updates to the mapping-dependent buffer model for a set of moves:
#: (fp_new, esize_new, need_new) — only the entries that change.
_BufModel = Tuple[
    Dict[str, int],
    Dict[Tuple[str, str], float],
    Dict[str, float],
]

#: Per-application deltas of a set of moves (multi-app composites only):
#: (d_app_compute, d_app_in, d_app_out keyed by (app, pe);
#:  d_app_link, d_app_link_count keyed by (app, (src_cell, dst_cell))).
_AppDeltas = Tuple[
    Dict[Tuple[str, int], float],
    Dict[Tuple[str, int], float],
    Dict[Tuple[str, int], float],
    Dict[Tuple[str, Tuple[int, int]], float],
    Dict[Tuple[str, Tuple[int, int]], int],
]

#: Internal bundle of per-resource deltas for a set of simultaneous moves:
#: (moved, d_compute, d_in, d_out, d_buf, d_dma_in, d_dma_proxy,
#:  d_link_bytes, d_link_count, bufmodel, appdeltas).
_Deltas = Tuple[
    Dict[str, int],
    Dict[int, float],
    Dict[int, float],
    Dict[int, float],
    Dict[int, float],
    Dict[int, int],
    Dict[int, int],
    Dict[Tuple[int, int], float],
    Dict[Tuple[int, int], int],
    Optional[_BufModel],
    Optional[_AppDeltas],
]


class DeltaAnalyzer:
    """Mutable load state of a mapping with O(deg) move evaluation.

    With the default flags this matches ``analyze(mapping)``: buffer sizes
    are the mapping-independent §4.2 constants, so a move only shifts
    which local store hosts them.  With ``elide_local_comm`` and/or
    ``merge_same_pe_buffers`` it matches
    ``analyze(mapping, elide_local_comm=..., merge_same_pe_buffers=...)``
    and additionally maintains the mapping-dependent buffer model
    incrementally (see the module docstring).
    """

    def __init__(
        self,
        mapping: Mapping,
        elide_local_comm: bool = False,
        merge_same_pe_buffers: bool = False,
    ) -> None:
        self.graph = mapping.graph
        self.platform = mapping.platform
        self.elide_local_comm = bool(elide_local_comm)
        self.merge_same_pe_buffers = bool(merge_same_pe_buffers)
        self._mapping_dependent = (
            self.elide_local_comm or self.merge_same_pe_buffers
        )
        platform = self.platform
        n = platform.n_pes
        self._n_pes = n
        self._bw = platform.bw
        self._bif_bw = platform.bif_bw
        self._budget = platform.buffer_budget
        self._in_slots = platform.dma_in_slots
        self._proxy_slots = platform.dma_proxy_slots
        self._is_ppe: List[bool] = [platform.is_ppe(i) for i in range(n)]
        self._is_spe: List[bool] = [not p for p in self._is_ppe]
        self._cell: List[int] = [platform.cell_of(i) for i in range(n)]
        self._multi = platform.n_cells > 1

        self._assign: Dict[str, int] = mapping.to_dict()
        # Multi-application composite graphs additionally get per-app
        # occupation tracking (the basis of the weighted / max-stretch
        # objectives); plain graphs pay nothing.
        app_of = getattr(self.graph, "app_of", None) or None
        self._app_of: Optional[Dict[str, str]] = (
            dict(app_of) if app_of is not None else None
        )
        self._app_names: Tuple[str, ...] = (
            tuple(getattr(self.graph, "app_names", ()))
            if app_of is not None
            else ()
        )
        # Per-task constants: (wppe, wspe, read, write).
        self._tinfo: Dict[str, Tuple[float, float, float, float]] = {
            t.name: (t.wppe, t.wspe, t.read, t.write)
            for t in self.graph.tasks()
        }
        # Adjacency as (neighbour, payload) pairs for O(deg) edge walks.
        self._in_adj: Dict[str, List[Tuple[str, float]]] = {
            name: [(e.src, e.data) for e in self.graph.in_edges(name)]
            for name in self._assign
        }
        self._out_adj: Dict[str, List[Tuple[str, float]]] = {
            name: [(e.dst, e.data) for e in self.graph.out_edges(name)]
            for name in self._assign
        }

        # Buffer model.  In the default mode ``need`` is the constant §4.2
        # footprint; in the mapping-dependent modes it is mutable state,
        # together with the per-edge sizes and (under elision) the first
        # periods, and the static structures below support their O(deg)
        # incremental maintenance.
        self._fp: Optional[Dict[str, int]] = None
        self._esize: Optional[Dict[Tuple[str, str], float]] = None
        if self._mapping_dependent:
            self._tindex: Optional[Dict[str, int]] = {
                name: i
                for i, name in enumerate(self.graph.topological_order())
            }
            self._peek: Optional[Dict[str, int]] = {
                t.name: t.peek for t in self.graph.tasks()
            }
            inc: Dict[str, List[Tuple[str, str]]] = {
                name: [] for name in self._assign
            }
            data: Dict[Tuple[str, str], float] = {}
            for e in self.graph.edges():
                inc[e.src].append(e.key)
                inc[e.dst].append(e.key)
                data[e.key] = e.data
            #: Incident edge keys per task, in *global* edge insertion
            #: order — the accumulation order ``buffer_requirements`` uses,
            #: which is what makes recomputed ``need`` values bit-identical.
            self._inc_keys: Optional[Dict[str, List[Tuple[str, str]]]] = inc
            self._edge_data: Optional[Dict[Tuple[str, str], float]] = data
            self._need: Dict[str, float] = {}
        else:
            self._tindex = None
            self._peek = None
            self._inc_keys = None
            self._edge_data = None
            self._need = buffer_requirements(self.graph)

        # Mutable load state, filled by _rebuild().
        self._compute: List[float] = []
        self._in_bytes: List[float] = []
        self._out_bytes: List[float] = []
        self._peak: List[float] = []
        self._buffer: Dict[int, float] = {}
        self._dma_in: Dict[int, int] = {}
        self._dma_proxy: Dict[int, int] = {}
        self._link_bytes: Dict[Tuple[int, int], float] = {}
        self._link_count: Dict[Tuple[int, int], int] = {}
        self._n_violations = 0
        # Per-application mutable state (composites only).
        self._app_compute: Dict[str, List[float]] = {}
        self._app_in: Dict[str, List[float]] = {}
        self._app_out: Dict[str, List[float]] = {}
        self._app_peak: Dict[str, List[float]] = {}
        self._app_link_bytes: Dict[Tuple[str, Tuple[int, int]], float] = {}
        self._app_link_count: Dict[Tuple[str, Tuple[int, int]], int] = {}
        self._rebuild()

    # ------------------------------------------------------------------ #
    # State construction

    def _rebuild(self) -> None:
        """Recompute all cached loads from scratch (same order as analyze)."""
        platform = self.platform
        assign = self._assign
        n = self._n_pes

        if self._mapping_dependent:
            # Re-derive the mapping-dependent buffer model through the
            # same code paths ``analyze`` uses, so every cached float is
            # the exact value the reference computation produces.
            mapping = Mapping(self.graph, platform, assign)
            if self.elide_local_comm:
                self._fp = first_periods(
                    self.graph, mapping, elide_local_comm=True
                )
            self._esize = buffer_sizes(
                self.graph,
                mapping if self.elide_local_comm else None,
                elide_local_comm=self.elide_local_comm,
            )
            self._need = buffer_requirements(
                self.graph,
                mapping,
                elide_local_comm=self.elide_local_comm,
                merge_same_pe_buffers=self.merge_same_pe_buffers,
            )

        app_of = self._app_of
        app_compute: Dict[str, List[float]] = {}
        app_in: Dict[str, List[float]] = {}
        app_out: Dict[str, List[float]] = {}
        app_link_bytes: Dict[Tuple[str, Tuple[int, int]], float] = {}
        app_link_count: Dict[Tuple[str, Tuple[int, int]], int] = {}
        if app_of is not None:
            for app in self._app_names:
                app_compute[app] = [0.0] * n
                app_in[app] = [0.0] * n
                app_out[app] = [0.0] * n

        compute = [0.0] * n
        in_bytes = [0.0] * n
        out_bytes = [0.0] * n
        for task in self.graph.tasks():
            pe = assign[task.name]
            cost = task.cost_on(platform.kind(pe))
            compute[pe] += cost
            in_bytes[pe] += task.read
            out_bytes[pe] += task.write
            if app_of is not None:
                app = app_of[task.name]
                app_compute[app][pe] += cost
                app_in[app][pe] += task.read
                app_out[app][pe] += task.write

        dma_in = {i: 0 for i in platform.spe_indices}
        dma_proxy = {i: 0 for i in platform.spe_indices}
        link_bytes: Dict[Tuple[int, int], float] = {}
        link_count: Dict[Tuple[int, int], int] = {}
        is_spe, is_ppe, cell = self._is_spe, self._is_ppe, self._cell
        for edge in self.graph.edges():
            src_pe = assign[edge.src]
            dst_pe = assign[edge.dst]
            if src_pe == dst_pe:
                continue
            out_bytes[src_pe] += edge.data
            in_bytes[dst_pe] += edge.data
            if app_of is not None:
                app = app_of[edge.src]  # endpoints always share the app
                app_out[app][src_pe] += edge.data
                app_in[app][dst_pe] += edge.data
            if is_spe[dst_pe]:
                dma_in[dst_pe] += 1
            if is_spe[src_pe] and is_ppe[dst_pe]:
                dma_proxy[src_pe] += 1
            if self._multi and cell[src_pe] != cell[dst_pe]:
                key = (cell[src_pe], cell[dst_pe])
                link_bytes[key] = link_bytes.get(key, 0.0) + edge.data
                link_count[key] = link_count.get(key, 0) + 1
                if app_of is not None:
                    akey = (app_of[edge.src], key)
                    app_link_bytes[akey] = (
                        app_link_bytes.get(akey, 0.0) + edge.data
                    )
                    app_link_count[akey] = app_link_count.get(akey, 0) + 1

        buffer = {i: 0.0 for i in platform.spe_indices}
        need = self._need
        for name, pe in assign.items():
            if is_spe[pe]:
                buffer[pe] += need[name]

        self._compute, self._in_bytes, self._out_bytes = compute, in_bytes, out_bytes
        self._dma_in, self._dma_proxy = dma_in, dma_proxy
        self._link_bytes, self._link_count = link_bytes, link_count
        self._buffer = buffer
        bw = self._bw
        self._peak = [
            max(compute[i], in_bytes[i] / bw, out_bytes[i] / bw)
            for i in range(n)
        ]
        if app_of is not None:
            self._app_compute, self._app_in, self._app_out = (
                app_compute, app_in, app_out,
            )
            self._app_link_bytes = app_link_bytes
            self._app_link_count = app_link_count
            self._app_peak = {
                app: [
                    max(
                        app_compute[app][i],
                        app_in[app][i] / bw,
                        app_out[app][i] / bw,
                    )
                    for i in range(n)
                ]
                for app in self._app_names
            }
        violations = 0
        for spe in platform.spe_indices:
            violations += buffer[spe] > self._budget
            violations += dma_in[spe] > self._in_slots
            violations += dma_proxy[spe] > self._proxy_slots
        self._n_violations = violations

    def resync(self) -> None:
        """One O(V+E) rebuild, re-anchoring the incremental state exactly."""
        self._rebuild()

    def clone(self) -> "DeltaAnalyzer":
        """An independent copy sharing only the immutable structure.

        O(V + E + n_pes) dictionary copies, no graph walk — much cheaper
        than building a fresh analyzer and the enabler of population
        metaheuristics (``genetic_algorithm`` clones a parent and applies
        crossover/mutation moves incrementally).
        """
        new = DeltaAnalyzer.__new__(DeltaAnalyzer)
        # Immutable/shared structure.
        for attr in (
            "graph", "platform", "elide_local_comm", "merge_same_pe_buffers",
            "_mapping_dependent", "_n_pes", "_bw", "_bif_bw", "_budget",
            "_in_slots", "_proxy_slots", "_is_ppe", "_is_spe", "_cell",
            "_multi", "_tinfo", "_in_adj", "_out_adj", "_tindex", "_peek",
            "_inc_keys", "_edge_data", "_app_of", "_app_names",
        ):
            setattr(new, attr, getattr(self, attr))
        # Mutable state — private copies.
        new._assign = dict(self._assign)
        new._need = dict(self._need) if self._mapping_dependent else self._need
        new._fp = dict(self._fp) if self._fp is not None else None
        new._esize = dict(self._esize) if self._esize is not None else None
        new._compute = list(self._compute)
        new._in_bytes = list(self._in_bytes)
        new._out_bytes = list(self._out_bytes)
        new._peak = list(self._peak)
        new._buffer = dict(self._buffer)
        new._dma_in = dict(self._dma_in)
        new._dma_proxy = dict(self._dma_proxy)
        new._link_bytes = dict(self._link_bytes)
        new._link_count = dict(self._link_count)
        new._n_violations = self._n_violations
        new._app_compute = {a: list(v) for a, v in self._app_compute.items()}
        new._app_in = {a: list(v) for a, v in self._app_in.items()}
        new._app_out = {a: list(v) for a, v in self._app_out.items()}
        new._app_peak = {a: list(v) for a, v in self._app_peak.items()}
        new._app_link_bytes = dict(self._app_link_bytes)
        new._app_link_count = dict(self._app_link_count)
        return new

    # ------------------------------------------------------------------ #
    # Queries

    def pe_of(self, task: str) -> int:
        try:
            return self._assign[task]
        except KeyError:
            raise MappingError(f"task {task!r} is not mapped") from None

    def assignment(self) -> Dict[str, int]:
        """A copy of the current task → PE assignment."""
        return dict(self._assign)

    def tasks_on(self, pe: int) -> List[str]:
        """Names of the tasks currently assigned to ``pe``.

        Mirrors :meth:`Mapping.tasks_on` on the live state (assignment
        order, O(V) scan) — e.g. the evacuation list when a PE drops out
        of service.
        """
        if not 0 <= pe < self._n_pes:
            raise MappingError(
                f"invalid PE {pe!r} (platform has {self._n_pes} PEs)"
            )
        return [name for name, host in self._assign.items() if host == pe]

    def mapping(self) -> Mapping:
        """The current state as an immutable :class:`Mapping`."""
        return Mapping(self.graph, self.platform, self._assign)

    def period(self) -> float:
        """Current period ``T`` (same value as ``analyze(...).period``)."""
        worst = max(self._peak)
        if self._multi:
            for value in self._link_bytes.values():
                time = value / self._bif_bw
                if time > worst:
                    worst = time
        return worst

    @property
    def feasible(self) -> bool:
        return self._n_violations == 0

    def score(self) -> MoveScore:
        """Score of the *current* state (no hypothetical move)."""
        return MoveScore(
            period=self.period(),
            feasible=self._n_violations == 0,
            n_violations=self._n_violations,
        )

    def app_periods(self) -> Dict[str, float]:
        """Per-application periods of the current state (see ``analyze``).

        Empty for plain (single-application) graphs; for composites, the
        same values ``analyze(self.mapping()).app_periods`` reports,
        read from the incrementally-maintained per-app sums.
        """
        if self._app_of is None:
            return {}
        return app_periods_from_loads(
            self._app_names,
            self._app_compute,
            self._app_in,
            self._app_out,
            self._app_link_bytes,
            self._bw,
            self._bif_bw,
        )

    # ------------------------------------------------------------------ #
    # Delta machinery

    def _buffer_deltas(
        self, moved: Dict[str, int]
    ) -> Tuple[_BufModel, Dict[int, float]]:
        """Mapping-dependent buffer-model updates for applying ``moved``.

        Returns ``((fp_new, esize_new, need_new), d_buf)`` with only the
        entries that actually change.  Cost: O(sum of degrees of the moved
        tasks) plus, under elision, the incident edges of the tasks whose
        ``firstPeriod`` actually shifts.
        """
        assign = self._assign
        is_spe = self._is_spe

        def new_pe(name: str) -> int:
            pe = moved.get(name)
            return assign[name] if pe is None else pe

        # 1. Propagate firstPeriod changes (elision only): a move flips
        # the ±1 communication period on the moved tasks' incident edges;
        # the topologically-ordered worklist re-evaluates each affected
        # task once and stops where the values converge.
        fp_new: Dict[str, int] = {}
        if self.elide_local_comm:
            fp = self._fp
            assert fp is not None and self._tindex is not None
            assert self._peek is not None
            tindex, peek = self._tindex, self._peek
            heap: List[Tuple[int, str]] = []
            queued: Set[str] = set()

            def push(name: str) -> None:
                if name not in queued:
                    queued.add(name)
                    heapq.heappush(heap, (tindex[name], name))

            for name in moved:
                push(name)
                for dst, _data in self._out_adj[name]:
                    push(dst)
            while heap:
                _, name = heapq.heappop(heap)
                preds = self._in_adj[name]
                if not preds:
                    value = 0
                else:
                    pe = new_pe(name)
                    value = (
                        max(
                            fp_new.get(p, fp[p])
                            + 1
                            + (0 if new_pe(p) == pe else 1)
                            for p, _data in preds
                        )
                        + peek[name]
                    )
                if value != fp[name]:
                    fp_new[name] = value
                    for dst, _data in self._out_adj[name]:
                        push(dst)

        # 2. Edge buffer sizes that change: only edges incident to a task
        # whose firstPeriod shifted (a region that shifts uniformly keeps
        # its interior windows — only the boundary edges change size).
        esize_new: Dict[Tuple[str, str], float] = {}
        if fp_new:
            fp = self._fp
            esize = self._esize
            edge_data = self._edge_data
            inc_keys = self._inc_keys
            assert fp is not None and esize is not None
            assert edge_data is not None and inc_keys is not None
            for name in fp_new:
                for key in inc_keys[name]:
                    if key in esize_new:
                        continue
                    u, v = key
                    size = edge_data[key] * (
                        fp_new.get(v, fp[v]) - fp_new.get(u, fp[u])
                    )
                    if size != esize[key]:
                        esize_new[key] = size

        # 3. Per-task footprints to recompute: endpoints of resized edges,
        # plus (under merging) the moved tasks and their consumers, whose
        # same-PE merge status may flip.
        dirty: Set[str] = set()
        for u, v in esize_new:
            dirty.add(u)
            dirty.add(v)
        if self.merge_same_pe_buffers:
            for name in moved:
                dirty.add(name)
                for dst, _data in self._out_adj[name]:
                    dirty.add(dst)

        need = self._need
        need_new: Dict[str, float] = {}
        if dirty:
            esize = self._esize
            inc_keys = self._inc_keys
            assert esize is not None and inc_keys is not None
            merge = self.merge_same_pe_buffers
            for name in dirty:
                # Same accumulation order as buffer_requirements: incident
                # edges in global edge order, producer side always counted,
                # consumer side skipped when merged — bit-identical sums.
                total = 0.0
                for key in inc_keys[name]:
                    u, v = key
                    size = esize_new.get(key)
                    if size is None:
                        size = esize[key]
                    if name == u:
                        total += size
                    else:
                        if merge and new_pe(u) == new_pe(v):
                            continue
                        total += size
                if total != need[name]:
                    need_new[name] = total

        # 4. Per-SPE buffer deltas: moved tasks change host, dirty
        # residents change footprint in place.
        d_buf: Dict[int, float] = {}
        for name, pe in moved.items():
            old_pe = assign[name]
            old_need = need[name]
            if is_spe[old_pe]:
                d_buf[old_pe] = d_buf.get(old_pe, 0.0) - old_need
            if is_spe[pe]:
                d_buf[pe] = d_buf.get(pe, 0.0) + need_new.get(name, old_need)
        for name, value in need_new.items():
            if name in moved:
                continue
            pe = assign[name]
            if is_spe[pe]:
                d_buf[pe] = d_buf.get(pe, 0.0) + (value - need[name])

        return (fp_new, esize_new, need_new), d_buf

    def _deltas(self, changes: Dict[str, int]) -> Optional[_Deltas]:
        """Per-resource deltas for applying ``changes`` simultaneously.

        O(sum of degrees of the moved tasks) — plus, under
        ``elide_local_comm``, the affected downstream region (see the
        module docstring).  Returns ``None`` when no task actually changes
        PE.
        """
        assign = self._assign
        n = self._n_pes
        moved: Dict[str, int] = {}
        for name, pe in changes.items():
            if name not in assign:
                raise MappingError(f"task {name!r} is not mapped")
            if not 0 <= pe < n:
                raise MappingError(
                    f"task {name!r} moved to invalid PE {pe!r} "
                    f"(platform has {n} PEs)"
                )
            if assign[name] != pe:
                moved[name] = pe
        if not moved:
            return None

        is_ppe, is_spe, cell = self._is_ppe, self._is_spe, self._cell
        app_of = self._app_of
        d_compute: Dict[int, float] = {}
        d_in: Dict[int, float] = {}
        d_out: Dict[int, float] = {}
        d_buf: Dict[int, float] = {}
        d_dma_in: Dict[int, int] = {}
        d_dma_proxy: Dict[int, int] = {}
        d_link: Dict[Tuple[int, int], float] = {}
        d_link_n: Dict[Tuple[int, int], int] = {}
        edges: Dict[Tuple[str, str], float] = {}
        # Per-application mirrors of the deltas above — only allocated on
        # composites so plain graphs keep the original hot-path cost.
        if app_of is not None:
            da_compute: Dict[Tuple[str, int], float] = {}
            da_in: Dict[Tuple[str, int], float] = {}
            da_out: Dict[Tuple[str, int], float] = {}
            da_link: Dict[Tuple[str, Tuple[int, int]], float] = {}
            da_link_n: Dict[Tuple[str, Tuple[int, int]], int] = {}

        for name, new_pe in moved.items():
            old_pe = assign[name]
            wppe, wspe, read, write = self._tinfo[name]
            old_cost = wppe if is_ppe[old_pe] else wspe
            new_cost = wppe if is_ppe[new_pe] else wspe
            d_compute[old_pe] = d_compute.get(old_pe, 0.0) - old_cost
            d_compute[new_pe] = d_compute.get(new_pe, 0.0) + new_cost
            d_in[old_pe] = d_in.get(old_pe, 0.0) - read
            d_in[new_pe] = d_in.get(new_pe, 0.0) + read
            d_out[old_pe] = d_out.get(old_pe, 0.0) - write
            d_out[new_pe] = d_out.get(new_pe, 0.0) + write
            if app_of is not None:
                app = app_of[name]
                ko, kn = (app, old_pe), (app, new_pe)
                da_compute[ko] = da_compute.get(ko, 0.0) - old_cost
                da_compute[kn] = da_compute.get(kn, 0.0) + new_cost
                da_in[ko] = da_in.get(ko, 0.0) - read
                da_in[kn] = da_in.get(kn, 0.0) + read
                da_out[ko] = da_out.get(ko, 0.0) - write
                da_out[kn] = da_out.get(kn, 0.0) + write
            if not self._mapping_dependent:
                need = self._need[name]
                if is_spe[old_pe]:
                    d_buf[old_pe] = d_buf.get(old_pe, 0.0) - need
                if is_spe[new_pe]:
                    d_buf[new_pe] = d_buf.get(new_pe, 0.0) + need
            for src, data in self._in_adj[name]:
                edges[(src, name)] = data
            for dst, data in self._out_adj[name]:
                edges[(name, dst)] = data

        for (u, v), data in edges.items():
            old_u, old_v = assign[u], assign[v]
            new_u, new_v = moved.get(u, old_u), moved.get(v, old_v)
            if old_u != old_v:  # retract the old cross-PE contribution
                d_out[old_u] = d_out.get(old_u, 0.0) - data
                d_in[old_v] = d_in.get(old_v, 0.0) - data
                if app_of is not None:
                    app = app_of[u]  # endpoints always share the app
                    ku, kv = (app, old_u), (app, old_v)
                    da_out[ku] = da_out.get(ku, 0.0) - data
                    da_in[kv] = da_in.get(kv, 0.0) - data
                if is_spe[old_v]:
                    d_dma_in[old_v] = d_dma_in.get(old_v, 0) - 1
                if is_spe[old_u] and is_ppe[old_v]:
                    d_dma_proxy[old_u] = d_dma_proxy.get(old_u, 0) - 1
                if self._multi and cell[old_u] != cell[old_v]:
                    key = (cell[old_u], cell[old_v])
                    d_link[key] = d_link.get(key, 0.0) - data
                    d_link_n[key] = d_link_n.get(key, 0) - 1
                    if app_of is not None:
                        akey = (app_of[u], key)
                        da_link[akey] = da_link.get(akey, 0.0) - data
                        da_link_n[akey] = da_link_n.get(akey, 0) - 1
            if new_u != new_v:  # add the new cross-PE contribution
                d_out[new_u] = d_out.get(new_u, 0.0) + data
                d_in[new_v] = d_in.get(new_v, 0.0) + data
                if app_of is not None:
                    app = app_of[u]
                    ku, kv = (app, new_u), (app, new_v)
                    da_out[ku] = da_out.get(ku, 0.0) + data
                    da_in[kv] = da_in.get(kv, 0.0) + data
                if is_spe[new_v]:
                    d_dma_in[new_v] = d_dma_in.get(new_v, 0) + 1
                if is_spe[new_u] and is_ppe[new_v]:
                    d_dma_proxy[new_u] = d_dma_proxy.get(new_u, 0) + 1
                if self._multi and cell[new_u] != cell[new_v]:
                    key = (cell[new_u], cell[new_v])
                    d_link[key] = d_link.get(key, 0.0) + data
                    d_link_n[key] = d_link_n.get(key, 0) + 1
                    if app_of is not None:
                        akey = (app_of[u], key)
                        da_link[akey] = da_link.get(akey, 0.0) + data
                        da_link_n[akey] = da_link_n.get(akey, 0) + 1

        bufmodel: Optional[_BufModel] = None
        if self._mapping_dependent:
            bufmodel, d_buf = self._buffer_deltas(moved)

        appdeltas: Optional[_AppDeltas] = None
        if app_of is not None:
            appdeltas = (da_compute, da_in, da_out, da_link, da_link_n)

        return (
            moved, d_compute, d_in, d_out, d_buf,
            d_dma_in, d_dma_proxy, d_link, d_link_n, bufmodel, appdeltas,
        )

    def _violation_shift(
        self,
        d_buf: Dict[int, float],
        d_dma_in: Dict[int, int],
        d_dma_proxy: Dict[int, int],
    ) -> int:
        """Net change in the number of violated (1i)–(1k) constraints."""
        shift = 0
        budget, in_slots, proxy_slots = (
            self._budget, self._in_slots, self._proxy_slots,
        )
        for spe, dv in d_buf.items():
            old = self._buffer[spe]
            shift += (old + dv > budget) - (old > budget)
        for spe, dv in d_dma_in.items():
            old = self._dma_in[spe]
            shift += (old + dv > in_slots) - (old > in_slots)
        for spe, dv in d_dma_proxy.items():
            old = self._dma_proxy[spe]
            shift += (old + dv > proxy_slots) - (old > proxy_slots)
        return shift

    def _score(self, deltas: Optional[_Deltas]) -> MoveScore:
        if deltas is None:
            return self.score()
        (_moved, d_compute, d_in, d_out, d_buf,
         d_dma_in, d_dma_proxy, d_link, _d_link_n, _bufmodel,
         _appdeltas) = deltas

        bw = self._bw
        compute, in_bytes, out_bytes = self._compute, self._in_bytes, self._out_bytes
        peak = self._peak
        touched = set(d_compute)
        touched.update(d_in)
        touched.update(d_out)
        worst = 0.0
        for pe in range(self._n_pes):
            if pe in touched:
                value = compute[pe] + d_compute.get(pe, 0.0)
                comm = (in_bytes[pe] + d_in.get(pe, 0.0)) / bw
                if comm > value:
                    value = comm
                comm = (out_bytes[pe] + d_out.get(pe, 0.0)) / bw
                if comm > value:
                    value = comm
            else:
                value = peak[pe]
            if value > worst:
                worst = value
        if self._multi:
            link = self._link_bytes
            keys = set(link)
            keys.update(d_link)
            for key in keys:
                time = (link.get(key, 0.0) + d_link.get(key, 0.0)) / self._bif_bw
                if time > worst:
                    worst = time

        n_violations = self._n_violations + self._violation_shift(
            d_buf, d_dma_in, d_dma_proxy
        )
        return MoveScore(
            period=worst, feasible=n_violations == 0, n_violations=n_violations
        )

    def _candidate_app_periods(
        self, deltas: Optional[_Deltas]
    ) -> Dict[str, float]:
        """Per-app periods of the hypothetical state ``deltas`` describes.

        O(n_apps × n_pes) worst case, but untouched (app, PE) pairs read
        the cached per-app peak, so the common single-move case touches
        a handful of entries.
        """
        if deltas is None or self._app_of is None:
            return self.app_periods()
        appdeltas = deltas[10]
        assert appdeltas is not None
        da_compute, da_in, da_out, da_link, _da_link_n = appdeltas
        touched = set(da_compute)
        touched.update(da_in)
        touched.update(da_out)
        bw = self._bw
        out: Dict[str, float] = {}
        for app in self._app_names:
            compute = self._app_compute[app]
            in_b, out_b = self._app_in[app], self._app_out[app]
            peak = self._app_peak[app]
            worst = 0.0
            for pe in range(self._n_pes):
                key = (app, pe)
                if key in touched:
                    value = max(
                        compute[pe] + da_compute.get(key, 0.0),
                        (in_b[pe] + da_in.get(key, 0.0)) / bw,
                        (out_b[pe] + da_out.get(key, 0.0)) / bw,
                    )
                else:
                    value = peak[pe]
                if value > worst:
                    worst = value
            out[app] = worst
        if self._multi:
            link = self._app_link_bytes
            keys = set(link)
            keys.update(da_link)
            for akey in keys:
                app = akey[0]
                time = (
                    link.get(akey, 0.0) + da_link.get(akey, 0.0)
                ) / self._bif_bw
                if time > out[app]:
                    out[app] = time
        return out

    def _evaluate(self, deltas: Optional[_Deltas], objective) -> ObjectiveScore:
        score = self._score(deltas)
        if objective is None or not getattr(
            objective, "needs_app_periods", False
        ):
            value = (
                score.period
                if objective is None
                else objective.value(score.period, None)
            )
        else:
            value = objective.value(
                score.period, self._candidate_app_periods(deltas)
            )
        return ObjectiveScore(
            value=value,
            period=score.period,
            feasible=score.feasible,
            n_violations=score.n_violations,
        )

    def _apply(self, deltas: Optional[_Deltas]) -> None:
        if deltas is None:
            return
        (moved, d_compute, d_in, d_out, d_buf,
         d_dma_in, d_dma_proxy, d_link, d_link_n, bufmodel,
         appdeltas) = deltas

        self._n_violations += self._violation_shift(d_buf, d_dma_in, d_dma_proxy)
        for name, pe in moved.items():
            self._assign[name] = pe
        if bufmodel is not None:
            fp_new, esize_new, need_new = bufmodel
            if fp_new:
                assert self._fp is not None
                self._fp.update(fp_new)
            if esize_new:
                assert self._esize is not None
                self._esize.update(esize_new)
            if need_new:
                self._need.update(need_new)
        for pe, dv in d_compute.items():
            self._compute[pe] += dv
        for pe, dv in d_in.items():
            self._in_bytes[pe] += dv
        for pe, dv in d_out.items():
            self._out_bytes[pe] += dv
        for spe, dv in d_buf.items():
            self._buffer[spe] += dv
        for spe, dv in d_dma_in.items():
            self._dma_in[spe] += dv
        for spe, dv in d_dma_proxy.items():
            self._dma_proxy[spe] += dv
        for key, dv in d_link.items():
            count = self._link_count.get(key, 0) + d_link_n[key]
            if count:
                self._link_count[key] = count
                self._link_bytes[key] = self._link_bytes.get(key, 0.0) + dv
            else:  # no cross-cell edge left on this link direction
                self._link_count.pop(key, None)
                self._link_bytes.pop(key, None)
        bw = self._bw
        touched = set(d_compute)
        touched.update(d_in)
        touched.update(d_out)
        for pe in touched:
            self._peak[pe] = max(
                self._compute[pe],
                self._in_bytes[pe] / bw,
                self._out_bytes[pe] / bw,
            )
        if appdeltas is not None:
            da_compute, da_in, da_out, da_link, da_link_n = appdeltas
            for (app, pe), dv in da_compute.items():
                self._app_compute[app][pe] += dv
            for (app, pe), dv in da_in.items():
                self._app_in[app][pe] += dv
            for (app, pe), dv in da_out.items():
                self._app_out[app][pe] += dv
            for akey, dv in da_link.items():
                count = self._app_link_count.get(akey, 0) + da_link_n[akey]
                if count:
                    self._app_link_count[akey] = count
                    self._app_link_bytes[akey] = (
                        self._app_link_bytes.get(akey, 0.0) + dv
                    )
                else:
                    self._app_link_count.pop(akey, None)
                    self._app_link_bytes.pop(akey, None)
            touched_app = set(da_compute)
            touched_app.update(da_in)
            touched_app.update(da_out)
            for app, pe in touched_app:
                self._app_peak[app][pe] = max(
                    self._app_compute[app][pe],
                    self._app_in[app][pe] / bw,
                    self._app_out[app][pe] / bw,
                )

    # ------------------------------------------------------------------ #
    # Public move/swap API

    def score_move(self, task: str, pe: int) -> MoveScore:
        """Score of the mapping with ``task`` moved to ``pe`` — O(deg(task))."""
        return self._score(self._deltas({task: pe}))

    def score_swap(self, a: str, b: str) -> MoveScore:
        """Score of the mapping with tasks ``a`` and ``b`` exchanging PEs."""
        return self._score(self._deltas({a: self.pe_of(b), b: self.pe_of(a)}))

    def score_changes(self, changes: Dict[str, int]) -> MoveScore:
        """Score of the mapping with all of ``changes`` applied at once.

        ``changes`` maps task names to target PEs; tasks already on their
        target are ignored.  This is the bulk interface population
        metaheuristics use to evaluate crossover offspring in one pass.
        """
        return self._score(self._deltas(dict(changes)))

    def apply_move(self, task: str, pe: int) -> None:
        """Commit a single-task move into the cached state — O(deg(task))."""
        self._apply(self._deltas({task: pe}))

    def apply_swap(self, a: str, b: str) -> None:
        """Commit a task-pair PE exchange into the cached state."""
        self._apply(self._deltas({a: self.pe_of(b), b: self.pe_of(a)}))

    def apply_changes(self, changes: Dict[str, int]) -> None:
        """Commit a set of simultaneous task moves into the cached state."""
        self._apply(self._deltas(dict(changes)))

    def try_apply_changes(self, changes: Dict[str, int]) -> MoveScore:
        """Score ``changes`` and commit them only when feasible.

        One delta computation serves both the verdict and the commit —
        half the cost of ``score_changes`` + ``apply_changes`` on the
        population-search hot path.  Returns the score of the candidate
        state whether or not it was committed.
        """
        deltas = self._deltas(dict(changes))
        score = self._score(deltas)
        if score.feasible:
            self._apply(deltas)
        return score

    # ------------------------------------------------------------------ #
    # Objective-aware evaluation (the pluggable-objective hot path)

    def evaluate(self, objective=None) -> ObjectiveScore:
        """Objective score of the *current* state.

        ``objective`` is any object with a ``needs_app_periods`` flag and
        a ``value(period, app_periods)`` method (see
        :mod:`repro.steady_state.objective`); ``None`` means the plain
        period objective.
        """
        return self._evaluate(None, objective)

    def evaluate_move(self, task: str, pe: int, objective=None) -> ObjectiveScore:
        """Objective score with ``task`` moved to ``pe`` — O(deg(task))."""
        return self._evaluate(self._deltas({task: pe}), objective)

    def evaluate_swap(self, a: str, b: str, objective=None) -> ObjectiveScore:
        """Objective score with tasks ``a`` and ``b`` exchanging PEs."""
        return self._evaluate(
            self._deltas({a: self.pe_of(b), b: self.pe_of(a)}), objective
        )

    def evaluate_changes(self, changes: Dict[str, int], objective=None) -> ObjectiveScore:
        """Objective score with all of ``changes`` applied at once."""
        return self._evaluate(self._deltas(dict(changes)), objective)

    # ------------------------------------------------------------------ #
    # Full analysis

    def snapshot(self) -> PeriodAnalysis:
        """A full :class:`PeriodAnalysis` of the current state.

        Field-for-field identical to ``analyze(self.mapping(),
        elide_local_comm=..., merge_same_pe_buffers=...)`` with this
        analyzer's flags (see the module docstring for the exactness
        guarantee), built in O(V + n_pes) without re-walking the edges.
        """
        platform = self.platform
        bw = self._bw
        loads = [
            ResourceLoad(
                pe=i,
                pe_name=platform.pe_name(i),
                compute=self._compute[i],
                comm_in=self._in_bytes[i] / bw,
                comm_out=self._out_bytes[i] / bw,
            )
            for i in range(self._n_pes)
        ]
        buffer_bytes = {i: self._buffer[i] for i in platform.spe_indices}
        dma_in = {i: self._dma_in[i] for i in platform.spe_indices}
        dma_proxy = {i: self._dma_proxy[i] for i in platform.spe_indices}
        violations: List[Violation] = []
        for spe in platform.spe_indices:
            pe_name = platform.pe_name(spe)
            if buffer_bytes[spe] > self._budget:
                violations.append(
                    Violation("memory", spe, pe_name, buffer_bytes[spe], self._budget)
                )
            if dma_in[spe] > self._in_slots:
                violations.append(
                    Violation("dma_in", spe, pe_name, dma_in[spe], self._in_slots)
                )
            if dma_proxy[spe] > self._proxy_slots:
                violations.append(
                    Violation(
                        "dma_proxy", spe, pe_name, dma_proxy[spe], self._proxy_slots
                    )
                )
        link_loads = [
            LinkLoad(src_cell=src, dst_cell=dst, time=bytes_ / self._bif_bw)
            for (src, dst), bytes_ in sorted(self._link_bytes.items())
        ]
        return PeriodAnalysis(
            mapping=self.mapping(),
            loads=loads,
            buffer_bytes=buffer_bytes,
            dma_in=dma_in,
            dma_proxy=dma_proxy,
            violations=violations,
            link_loads=link_loads,
            app_periods=self.app_periods(),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        flags = []
        if self.elide_local_comm:
            flags.append("elide_local_comm")
        if self.merge_same_pe_buffers:
            flags.append("merge_same_pe_buffers")
        suffix = f", {'+'.join(flags)}" if flags else ""
        return (
            f"DeltaAnalyzer({self.graph.name!r}, period={self.period():.3f}, "
            f"violations={self._n_violations}{suffix})"
        )
