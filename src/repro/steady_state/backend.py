"""Kernel-backend selection for the delta engine.

PR 5 compiled graphs into integer CSR arrays (:mod:`.compiled`); the
neighbourhood arithmetic itself can now run on two interchangeable
backends behind the same :class:`~repro.steady_state.delta.DeltaAnalyzer`
API:

``python``
    The scalar reference kernel — pure-Python loops over the CSR
    arrays.  Always available, and the semantics oracle: every other
    backend must reproduce its results bit for bit on integer-valued
    cost graphs (and within one ulp otherwise, where summation order
    differs).
``numpy``
    Dense array kernels (:mod:`.backend_numpy`): one masked cost-matrix
    pass per neighbourhood (all tasks × all PEs), a pairwise
    swap-neighbourhood kernel, and a population-level "score K
    assignments at once" pass for the GA.  Requires numpy at runtime.

Selection precedence (highest first):

1. an explicit ``backend=`` argument to ``DeltaAnalyzer`` /
   ``OnlineScheduler`` / the strategy entry points;
2. the ``REPRO_KERNEL_BACKEND`` environment variable
   (``python`` | ``numpy`` | ``auto``);
3. ``auto`` — numpy when importable, else the scalar kernel.

Requesting ``numpy`` explicitly (argument or env var) in an environment
without numpy raises :class:`~repro.errors.KernelBackendError`; ``auto``
silently falls back to ``python``.  The mapping-dependent buffer modes
(``elide_local_comm`` / ``merge_same_pe_buffers``) always evaluate on
the scalar kernel regardless of the selected backend — the vectorized
passes cover the default buffer model, where candidate footprints are
mapping-independent.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from ..errors import KernelBackendError

__all__ = [
    "BACKEND_ENV_VAR",
    "KERNEL_BACKENDS",
    "available_backends",
    "numpy_available",
    "resolve_backend",
]

#: Environment variable consulted when no explicit backend is passed.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: The recognised backend names (``auto`` additionally accepted as a
#: selector meaning "pick for me").
KERNEL_BACKENDS: Tuple[str, ...] = ("python", "numpy")

_NUMPY_OK: Optional[bool] = None


def numpy_available() -> bool:
    """Whether the numpy kernel backend can be used in this process."""
    global _NUMPY_OK
    if _NUMPY_OK is None:
        try:
            import numpy  # noqa: F401

            _NUMPY_OK = True
        except ImportError:  # pragma: no cover - exercised via stubbing
            _NUMPY_OK = False
    return _NUMPY_OK


def available_backends() -> Tuple[str, ...]:
    """The backend names usable in this process, scalar kernel first."""
    if numpy_available():
        return KERNEL_BACKENDS
    return ("python",)  # pragma: no cover - exercised via stubbing


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a backend request to a concrete backend name.

    ``backend`` is the explicit argument (wins when given); ``None``
    defers to ``REPRO_KERNEL_BACKEND``, and an unset/``auto`` selection
    auto-detects.  Returns ``"python"`` or ``"numpy"``.
    """
    source = "backend argument"
    choice = backend
    if choice is None:
        choice = os.environ.get(BACKEND_ENV_VAR) or "auto"
        source = f"{BACKEND_ENV_VAR} environment variable"
    choice = choice.strip().lower()
    if choice == "auto":
        return "numpy" if numpy_available() else "python"
    if choice not in KERNEL_BACKENDS:
        names = ", ".join(KERNEL_BACKENDS + ("auto",))
        raise KernelBackendError(
            f"unknown kernel backend {choice!r} (from {source}); "
            f"pick from {names}"
        )
    if choice == "numpy" and not numpy_available():
        raise KernelBackendError(
            f"kernel backend 'numpy' requested via {source} "
            "but numpy is not importable in this environment"
        )
    return choice
