"""Kernel-backend selection for the delta engine.

PR 5 compiled graphs into integer CSR arrays (:mod:`.compiled`); the
neighbourhood arithmetic itself can now run on three interchangeable
backends behind the same :class:`~repro.steady_state.delta.DeltaAnalyzer`
API:

``python``
    The scalar reference kernel — pure-Python loops over the CSR
    arrays.  Always available, and the semantics oracle: every other
    backend must reproduce its results bit for bit on integer-valued
    cost graphs (and within one ulp otherwise, where summation order
    differs).
``numpy``
    Dense array kernels (:mod:`.backend_numpy`): one masked cost-matrix
    pass per neighbourhood (all tasks × all PEs), a pairwise
    swap-neighbourhood kernel, and a population-level "score K
    assignments at once" pass for the GA.  Requires numpy at runtime.
``cython``
    The compiled extension (:mod:`.backend_cython` over
    ``repro.steady_state._ckernel``): native scalar hot paths for
    exactly the work the dense kernels leave to Python — per-candidate
    scoring in the mapping-dependent buffer modes (including the
    incremental ``firstPeriod`` worklist), the ``_apply``/resync commit
    path, and in-place clone-state copies for the GA pool.  Requires
    the extension to have been built (``pip install .`` compiles it
    when a C compiler is present; pure-python installs skip it).  When
    numpy is also importable the dense batch kernels stay active
    alongside the native scalar paths.

Selection precedence (highest first):

1. an explicit ``backend=`` argument to ``DeltaAnalyzer`` /
   ``OnlineScheduler`` / the strategy entry points;
2. the ``REPRO_KERNEL_BACKEND`` environment variable
   (``python`` | ``numpy`` | ``cython`` | ``auto``);
3. ``auto`` — the compiled extension when importable, else numpy when
   importable, else the scalar kernel.

Requesting ``numpy`` or ``cython`` explicitly (argument or env var) in
an environment that cannot satisfy it raises
:class:`~repro.errors.KernelBackendError` naming the fix; ``auto``
silently falls back down the precedence chain.  Under the ``python``
and ``numpy`` backends the mapping-dependent buffer modes
(``elide_local_comm`` / ``merge_same_pe_buffers``) always evaluate on
the scalar kernel — the vectorized passes cover the default buffer
model, where candidate footprints are mapping-independent; the
``cython`` backend is the one that accelerates those modes.

Setting ``REPRO_NO_EXTENSION=1`` makes the process behave as if the
extension were never built (CI's forced no-extension leg).
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

from ..errors import KernelBackendError

__all__ = [
    "BACKEND_ENV_VAR",
    "KERNEL_BACKENDS",
    "NO_EXTENSION_ENV_VAR",
    "available_backends",
    "cython_available",
    "numpy_available",
    "resolve_backend",
]

#: Environment variable consulted when no explicit backend is passed.
BACKEND_ENV_VAR = "REPRO_KERNEL_BACKEND"

#: When set (to anything non-empty), the compiled extension is treated
#: as unavailable even if built — the CI no-extension leg sets this.
NO_EXTENSION_ENV_VAR = "REPRO_NO_EXTENSION"

#: The recognised backend names (``auto`` additionally accepted as a
#: selector meaning "pick for me").
KERNEL_BACKENDS: Tuple[str, ...] = ("python", "numpy", "cython")

_NUMPY_OK: Optional[bool] = None
_CYTHON_OK: Optional[bool] = None


def numpy_available() -> bool:
    """Whether the numpy kernel backend can be used in this process."""
    global _NUMPY_OK
    if _NUMPY_OK is None:
        try:
            import numpy  # noqa: F401

            _NUMPY_OK = True
        except ImportError:  # pragma: no cover - exercised via stubbing
            _NUMPY_OK = False
    return _NUMPY_OK


def cython_available() -> bool:
    """Whether the compiled kernel extension can be used in this process.

    False when the extension was never built (pure-python install, no
    C compiler) and when ``REPRO_NO_EXTENSION`` is set.
    """
    global _CYTHON_OK
    if os.environ.get(NO_EXTENSION_ENV_VAR):
        return False
    if _CYTHON_OK is None:
        try:
            from . import _ckernel  # noqa: F401

            _CYTHON_OK = True
        except ImportError:  # pragma: no cover - exercised via stubbing
            _CYTHON_OK = False
    return _CYTHON_OK


def available_backends() -> Tuple[str, ...]:
    """The backend names usable in this process, scalar kernel first."""
    names = ["python"]
    if numpy_available():
        names.append("numpy")
    if cython_available():
        names.append("cython")
    return tuple(names)


def resolve_backend(backend: Optional[str] = None) -> str:
    """Resolve a backend request to a concrete backend name.

    ``backend`` is the explicit argument (wins when given); ``None``
    defers to ``REPRO_KERNEL_BACKEND``, and an unset/``auto`` selection
    auto-detects.  Returns ``"python"``, ``"numpy"`` or ``"cython"``.
    """
    source = "backend argument"
    choice = backend
    if choice is None:
        choice = os.environ.get(BACKEND_ENV_VAR) or "auto"
        source = f"{BACKEND_ENV_VAR} environment variable"
    choice = choice.strip().lower()
    if choice == "auto":
        if cython_available():
            return "cython"
        return "numpy" if numpy_available() else "python"
    if choice not in KERNEL_BACKENDS:
        names = ", ".join(KERNEL_BACKENDS + ("auto",))
        raise KernelBackendError(
            f"unknown kernel backend {choice!r} (from {source}); "
            f"pick from {names}"
        )
    if choice == "numpy" and not numpy_available():
        raise KernelBackendError(
            f"kernel backend 'numpy' requested via {source} "
            "but numpy is not importable in this environment"
        )
    if choice == "cython" and not cython_available():
        raise KernelBackendError(
            f"kernel backend 'cython' requested via {source} but the "
            "compiled extension is not built in this environment; "
            "build it with `pip install .` (needs a C compiler) or "
            "`python setup.py build_ext --inplace` for a source tree"
        )
    return choice
