"""Compiled integer-indexed graph arrays — the delta engine's hot-path kernel.

Every search layer (``local_search``, the metaheuristics, the GA's
repair/mutation, the online runtime's admission and budgeted descent)
funnels through :class:`~repro.steady_state.delta.DeltaAnalyzer`, whose
original bookkeeping was string-keyed: every candidate score walked
``Dict[str, ...]`` adjacency and cost tables, hashing task-name strings
millions of times per run.  :class:`CompiledGraph` compiles a
:class:`~repro.graph.stream_graph.StreamGraph` (or a workload
:class:`~repro.graph.workload.CompositeGraph`) once into flat,
integer-indexed arrays:

* **task ids** — ``names[tid]`` / ``index[name]``: tasks numbered in
  graph insertion order, so iterating ``range(n)`` reproduces the exact
  accumulation order of ``analyze()`` / ``graph.tasks()``;
* **CSR adjacency** — ``in_ptr``/``in_src``/``in_data``/``in_eid`` and
  the ``out_*`` mirror: the in/out edges of task ``t`` are the slice
  ``ptr[t]:ptr[t+1]``, an O(deg) walk with zero hashing;
* **edge ids** — ``edge_src``/``edge_dst``/``edge_data`` in insertion
  order (the order ``graph.edges()`` yields and every reference float
  accumulation uses), plus ``inc_ptr``/``inc_eid``: each task's incident
  edge ids in *global* edge order — the accumulation order
  ``periods.buffer_requirements`` uses, which is what keeps recomputed
  per-task footprints bit-identical under the mapping-dependent buffer
  models;
* **cost tables** — ``wppe``/``wspe``/``read``/``write``/``peek`` as
  flat lists of floats/ints indexed by tid;
* **derived constants** — ``topo_index`` (position in one fixed
  topological order, the worklist priority under ``elide_local_comm``)
  and ``need_default`` (the mapping-independent §4.2 per-task footprint,
  shared read-only by every default-mode analyzer on the graph);
* **application index** — on composites, ``app_index[tid]`` maps each
  task to its application's position in ``app_names`` (``None`` on
  plain graphs, which therefore pay nothing).

Compilation is memoized per graph and invalidated by
:attr:`StreamGraph.version` — the same contract as the memoized
``buffer_requirements`` (and audited the same way in
``tests/test_graph_version.py``): mutate the graph, and the next
:func:`compile_graph` call recompiles.
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

from ..graph.stream_graph import StreamGraph
from .periods import buffer_requirements

__all__ = ["CompiledGraph", "compile_graph"]


class CompiledGraph:
    """Immutable integer-indexed view of one graph version.

    Built by :func:`compile_graph`; treat every field as read-only —
    instances are shared by all :class:`DeltaAnalyzer` objects (and
    their clones) on the same graph version.
    """

    __slots__ = (
        "version",
        "n",
        "n_edges",
        "names",
        "index",
        "wppe",
        "wspe",
        "read",
        "write",
        "peek",
        "in_ptr",
        "in_src",
        "in_data",
        "in_eid",
        "out_ptr",
        "out_dst",
        "out_data",
        "out_eid",
        "edge_src",
        "edge_dst",
        "edge_data",
        "edge_keys",
        "inc_ptr",
        "inc_eid",
        "topo_index",
        "need_default",
        "app_names",
        "app_index",
        "_np",
    )

    def __init__(self, graph: StreamGraph) -> None:
        names: Tuple[str, ...] = tuple(graph.task_names())
        index: Dict[str, int] = {name: i for i, name in enumerate(names)}
        n = len(names)
        self.version: int = graph.version
        self.n: int = n
        self.names: Tuple[str, ...] = names
        self.index: Dict[str, int] = index

        # Per-task cost tables (flat, indexed by tid).
        wppe: List[float] = [0.0] * n
        wspe: List[float] = [0.0] * n
        read: List[float] = [0.0] * n
        write: List[float] = [0.0] * n
        peek: List[int] = [0] * n
        for t, task in enumerate(graph.tasks()):
            wppe[t] = task.wppe
            wspe[t] = task.wspe
            read[t] = task.read
            write[t] = task.write
            peek[t] = task.peek
        self.wppe, self.wspe = wppe, wspe
        self.read, self.write = read, write
        self.peek = peek

        # Edges in insertion order — the reference accumulation order.
        edge_src: List[int] = []
        edge_dst: List[int] = []
        edge_data: List[float] = []
        edge_keys: List[Tuple[str, str]] = []
        for edge in graph.edges():
            edge_src.append(index[edge.src])
            edge_dst.append(index[edge.dst])
            edge_data.append(edge.data)
            edge_keys.append(edge.key)
        m = len(edge_src)
        self.n_edges = m
        self.edge_src, self.edge_dst = edge_src, edge_dst
        self.edge_data, self.edge_keys = edge_data, edge_keys

        # CSR adjacency + per-task incident edge ids in global edge order.
        in_count = [0] * n
        out_count = [0] * n
        inc_count = [0] * n
        for e in range(m):
            out_count[edge_src[e]] += 1
            in_count[edge_dst[e]] += 1
            inc_count[edge_src[e]] += 1
            inc_count[edge_dst[e]] += 1
        in_ptr = _prefix(in_count)
        out_ptr = _prefix(out_count)
        inc_ptr = _prefix(inc_count)
        in_src = [0] * m
        in_data = [0.0] * m
        in_eid = [0] * m
        out_dst = [0] * m
        out_data = [0.0] * m
        out_eid = [0] * m
        inc_eid = [0] * (2 * m)
        in_fill = list(in_ptr)
        out_fill = list(out_ptr)
        inc_fill = list(inc_ptr)
        for e in range(m):
            u, v, d = edge_src[e], edge_dst[e], edge_data[e]
            k = out_fill[u]
            out_dst[k], out_data[k], out_eid[k] = v, d, e
            out_fill[u] = k + 1
            k = in_fill[v]
            in_src[k], in_data[k], in_eid[k] = u, d, e
            in_fill[v] = k + 1
            k = inc_fill[u]
            inc_eid[k] = e
            inc_fill[u] = k + 1
            k = inc_fill[v]
            inc_eid[k] = e
            inc_fill[v] = k + 1
        self.in_ptr, self.in_src, self.in_data, self.in_eid = (
            in_ptr, in_src, in_data, in_eid,
        )
        self.out_ptr, self.out_dst, self.out_data, self.out_eid = (
            out_ptr, out_dst, out_data, out_eid,
        )
        self.inc_ptr, self.inc_eid = inc_ptr, inc_eid

        # One fixed topological order: the worklist priority that keeps
        # the elide_local_comm firstPeriod propagation monotone.
        topo_index = [0] * n
        for pos, name in enumerate(graph.topological_order()):
            topo_index[index[name]] = pos
        self.topo_index = topo_index

        # Mapping-independent §4.2 footprints, shared read-only by every
        # default-mode analyzer on this graph version.
        need = buffer_requirements(graph)
        self.need_default: List[float] = [need[name] for name in names]

        # Application index (workload composites only).
        app_of = getattr(graph, "app_of", None) or None
        if app_of is not None:
            app_names = tuple(getattr(graph, "app_names", ()))
            app_pos = {app: i for i, app in enumerate(app_names)}
            self.app_names: Tuple[str, ...] = app_names
            self.app_index: Optional[List[int]] = [
                app_pos[app_of[name]] for name in names
            ]
        else:
            self.app_names = ()
            self.app_index = None

        # Lazy numpy mirrors (built on first arrays() call).
        self._np = None

    @property
    def n_apps(self) -> int:
        return len(self.app_names)

    def arrays(self):
        """Numpy mirrors of the compiled arrays, built once per graph.

        Returns a read-only namespace of mapping-independent ndarrays
        shared by every numpy-backend analyzer on this graph version:
        cost tables, edge endpoint/byte arrays, static per-task in/out
        aggregates, the app index, and the sorted direct-edge pair table
        the swap kernel looks pairs up in.  Raises ``ImportError`` when
        numpy is unavailable — callers gate on
        :func:`~repro.steady_state.backend.numpy_available`.
        """
        if self._np is None:
            from .backend_numpy import build_graph_arrays

            self._np = build_graph_arrays(self)
        return self._np

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        apps = f", {self.n_apps} apps" if self.app_index is not None else ""
        return (
            f"CompiledGraph({self.n} tasks, {self.n_edges} edges{apps}, "
            f"version={self.version})"
        )


def _prefix(counts: List[int]) -> List[int]:
    """Exclusive prefix sums: the CSR row-pointer array."""
    ptr = [0] * (len(counts) + 1)
    total = 0
    for i, c in enumerate(counts):
        ptr[i] = total
        total += c
    ptr[len(counts)] = total
    return ptr


#: Memoized compilations, keyed by ``id(graph)`` and validated against a
#: weak reference (id reuse) and the graph's mutation counter (staleness)
#: — the same pattern as ``periods._REQUIREMENTS_CACHE``.
_COMPILE_CACHE: Dict[int, Tuple["weakref.ref", CompiledGraph]] = {}


def compile_graph(graph: StreamGraph) -> CompiledGraph:
    """The memoized :class:`CompiledGraph` of ``graph``'s current version."""
    key = id(graph)
    entry = _COMPILE_CACHE.get(key)
    if entry is not None:
        ref, compiled = entry
        if ref() is graph and compiled.version == graph.version:
            return compiled
    compiled = CompiledGraph(graph)

    def _evict(_ref, key=key):
        _COMPILE_CACHE.pop(key, None)

    _COMPILE_CACHE[key] = (weakref.ref(graph, _evict), compiled)
    return compiled
