"""Pluggable scheduling objectives for multi-application workloads.

The paper optimises a single quantity: the steady-state period ``T`` of
the one application being mapped.  Once several applications share the
platform (:class:`~repro.graph.workload.Workload`), "as fast as
possible" stops being well-defined — Benoit, Rehn-Sonigo & Robert,
*Multi-criteria scheduling of pipeline workflows* (2007) motivates the
richer objective space this module implements:

``period``
    The shared-resource period of the whole composite — the paper's
    objective, and the default everywhere.  Also the fallback for plain
    (non-composite) graphs, where the other objectives degenerate to it.
``weighted``
    ``Σ_a weight_a · T_a`` over the member applications, where ``T_a``
    is application ``a``'s own-resource period under the candidate
    mapping (see ``PeriodAnalysis.app_periods``) and ``weight_a`` its
    :class:`~repro.graph.workload.WorkloadApp` weight.  Favours the
    important applications when they contend for the same SPEs.
``max_stretch``
    ``max_a T_a / ref_a``: the worst relative slowdown over the member
    applications, the classic fairness objective.  ``ref_a`` is the
    application's ``target_period`` when set, else a mapping-independent
    lower bound derived from the graph (the largest
    ``min(wppe, wspe)`` over its tasks — some PE must pay at least that
    for the critical task).

Every objective is **minimised**, evaluates deterministically (fixed
application order), and is consumed by ``DeltaAnalyzer.evaluate_*``
through the tiny duck-typed protocol ``(needs_app_periods,
value(period, app_periods))`` — so candidate moves stay O(deg) plus, for
the app-aware objectives, an O(n_apps × n_pes) max over cached per-app
peaks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from ..errors import ObjectiveError
from ..graph.stream_graph import StreamGraph

__all__ = [
    "OBJECTIVES",
    "MaxStretchObjective",
    "PeriodObjective",
    "WeightedPeriodObjective",
    "make_objective",
    "reference_periods",
]

#: The registered objective names, in documentation order.
OBJECTIVES: Tuple[str, ...] = ("period", "weighted", "max_stretch")


@dataclass(frozen=True)
class PeriodObjective:
    """Minimise the shared-resource period (the paper's objective)."""

    name: str = "period"
    needs_app_periods: bool = field(default=False, init=False)

    def value(
        self, period: float, app_periods: Optional[Mapping[str, float]]
    ) -> float:
        return period


@dataclass(frozen=True)
class WeightedPeriodObjective:
    """Minimise the weighted sum of per-application periods."""

    app_order: Tuple[str, ...]
    weights: Mapping[str, float]
    name: str = "weighted"
    needs_app_periods: bool = field(default=True, init=False)

    def value(
        self, period: float, app_periods: Optional[Mapping[str, float]]
    ) -> float:
        assert app_periods is not None
        total = 0.0
        for app in self.app_order:  # fixed order: deterministic float sum
            total += self.weights[app] * app_periods[app]
        return total


@dataclass(frozen=True)
class MaxStretchObjective:
    """Minimise the worst per-application stretch ``T_a / ref_a``."""

    app_order: Tuple[str, ...]
    refs: Mapping[str, float]
    name: str = "max_stretch"
    needs_app_periods: bool = field(default=True, init=False)

    def value(
        self, period: float, app_periods: Optional[Mapping[str, float]]
    ) -> float:
        assert app_periods is not None
        return max(app_periods[app] / self.refs[app] for app in self.app_order)


def reference_periods(graph: StreamGraph) -> Dict[str, float]:
    """The stretch reference ``ref_a`` of each application of a composite.

    ``target_period`` when the workload declares one, else the largest
    ``min(wppe, wspe)`` over the application's tasks — a cheap
    mapping-independent lower bound on any achievable period (clamped
    away from zero so stretches stay finite).
    """
    app_tasks = getattr(graph, "app_tasks", None)
    if app_tasks is None:
        raise ObjectiveError(
            f"graph {graph.name!r} is not a workload composite"
        )
    targets = getattr(graph, "app_targets", {})
    refs: Dict[str, float] = {}
    for app, names in app_tasks.items():
        target = targets.get(app)
        if target is not None:
            refs[app] = target
            continue
        bound = max(
            (min(graph.task(n).wppe, graph.task(n).wspe) for n in names),
            default=0.0,
        )
        refs[app] = max(bound, 1e-9)
    return refs


def make_objective(name: str, graph: StreamGraph):
    """Build the objective ``name`` for ``graph``.

    For plain (non-composite) graphs every objective collapses to the
    period objective — there is exactly one application, so the weighted
    sum and the max stretch are monotone in the shared period.
    """
    if name not in OBJECTIVES:
        raise ObjectiveError(
            f"unknown objective {name!r}; pick from {', '.join(OBJECTIVES)}"
        )
    app_names = tuple(getattr(graph, "app_names", ()))
    if name == "period" or not app_names:
        return PeriodObjective()
    if name == "weighted":
        weights = dict(getattr(graph, "app_weights", {}))
        for app in app_names:
            weights.setdefault(app, 1.0)
        return WeightedPeriodObjective(app_order=app_names, weights=weights)
    return MaxStretchObjective(
        app_order=app_names, refs=reference_periods(graph)
    )
