"""Compiled-extension kernel: native hot paths for the scalar work the
dense numpy kernels cannot vectorize.

The extension module (``repro.steady_state._ckernel``, built from
``_ckernel.c`` by ``setup.py``) operates directly on the analyzer's own
Python containers — it mirrors the exact float-accumulation order of
``DeltaAnalyzer._deltas_ids`` / ``_buffer_deltas`` / ``_score`` /
``_apply`` / ``_rebuild``, so every verdict and every piece of committed
state is bit-identical to the scalar kernel (the one documented ordering
liberty, iterating the dirty-task footprint in discovery order, permutes
only commutative additions and is exact on integer-cost graphs, the same
caveat :mod:`backend_numpy` carries).  Because the extension holds no
mirrored state there is nothing to invalidate: every call re-reads the
analyzer.

Covered paths (the ones the ISSUE names):

* per-candidate move/swap/changes scoring in the mapping-dependent
  buffer modes, including the incremental ``firstPeriod`` worklist
  (:meth:`CKernel.sweep`, :meth:`CKernel.score_ids`);
* the ``_apply``/resync hot path every strategy step and every online
  commit goes through (:meth:`CKernel.apply_ids`,
  :meth:`CKernel.try_apply_ids`, :meth:`CKernel.rebuild`);
* array-based clone pooling for the GA (:meth:`CKernel.copy_state`,
  used by :meth:`DeltaAnalyzer.copy_from` / :class:`ClonePool`).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

try:  # pragma: no cover - exercised via both CI matrix legs
    from . import _ckernel as _ext
except ImportError:  # pragma: no cover
    _ext = None

#: Bit flags understood by ``_ckernel.eval_changes``.
MODE_SCORE = 1
MODE_APPLY = 2
MODE_APPLY_IF_FEASIBLE = 4


def extension_available() -> bool:
    """True when the compiled extension imported successfully."""

    return _ext is not None


class CKernel:
    """Thin facade over the compiled extension for one analyzer.

    Stateless apart from the back-reference: safe to share across
    clones is *not* attempted — each analyzer owns one instance, and
    :meth:`DeltaAnalyzer.clone` builds a fresh facade for the copy.
    """

    __slots__ = ("_az",)

    def __init__(self, analyzer) -> None:
        if _ext is None:  # defensive; resolve_backend() gates earlier
            raise RuntimeError("compiled kernel extension is not built")
        self._az = analyzer

    # -- scoring ----------------------------------------------------

    def sweep(self, tid: int, pes: Sequence[int]) -> List[Tuple[float, int]]:
        """Per-candidate move sweep of ``tid`` over ``pes``; entries for
        the task's current PE hold the unchanged state's verdict."""

        return _ext.sweep(self._az, tid, pes)

    def score_ids(self, moved: Dict[int, int]) -> Tuple[float, int]:
        """Score a non-empty ``{tid: new_pe}`` change set (every entry
        must actually change PE — the caller filters no-ops)."""

        period, nviol, _ = _ext.eval_changes(self._az, moved, MODE_SCORE)
        return period, nviol

    # -- committing -------------------------------------------------

    def apply_ids(self, moved: Dict[int, int]) -> None:
        """Commit a change set unconditionally (no period computed)."""

        _ext.eval_changes(self._az, moved, MODE_APPLY)

    def try_apply_ids(self, moved: Dict[int, int]) -> Tuple[float, int, bool]:
        """Score and commit iff feasible; returns (period, nviol, applied)."""

        return _ext.eval_changes(
            self._az, moved, MODE_SCORE | MODE_APPLY_IF_FEASIBLE
        )

    # -- bulk state -------------------------------------------------

    def rebuild(self) -> None:
        """Recompute every cached aggregate from the current mapping
        (the buffer-model arrays must already be derived)."""

        _ext.rebuild(self._az)

    def copy_state(self, src) -> None:
        """Overwrite this analyzer's cached state in place from ``src``
        (same compiled graph + platform + flags; caller checks)."""

        _ext.copy_state(self._az, src)
