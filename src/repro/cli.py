"""Command-line interface.

Three entry points (installed as console scripts):

* ``repro-solve``      — compute a mapping (MILP or heuristic) for a graph;
* ``repro-simulate``   — run the discrete-event simulator on a mapping;
* ``repro-experiment`` — regenerate a figure/table of the paper.

Graphs are referenced either by a built-in name (``graph1``, ``graph2``,
``graph3``, ``audio``, ``video``, ``crypto``) or by a path to a JSON file
produced by :func:`repro.graph.save`.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from . import apps
from .errors import ReproError
from .generator.paper_graphs import (
    random_graph_1,
    random_graph_2,
    random_graph_3,
)
from .generator.costs import rescale_ccr
from .graph import io as graph_io
from .graph.stream_graph import StreamGraph
from .experiments import (
    STRATEGIES,
    build_mapping,
    coschedule,
    fig6_rampup,
    fig7_speedup,
    fig8_ccr,
    online,
    tables,
)
from .runtime.faults import load_timeline
from .steady_state.objective import OBJECTIVES
from .platform.cell import CellPlatform
from .simulator import SimConfig, simulate
from .steady_state.mapping import Mapping
from .steady_state.throughput import analyze

__all__ = ["main_solve", "main_simulate", "main_experiment"]

_BUILTIN_GRAPHS = {
    "graph1": random_graph_1,
    "graph2": random_graph_2,
    "graph3": random_graph_3,
    "audio": apps.audio_encoder,
    "video": apps.video_pipeline,
    "crypto": apps.crypto_pipeline,
}


def _load_graph(spec: str, ccr: Optional[float]) -> StreamGraph:
    if spec in _BUILTIN_GRAPHS:
        graph = _BUILTIN_GRAPHS[spec]()
    else:
        try:
            graph = graph_io.load(spec)
        except OSError as exc:
            raise ReproError(f"cannot read graph file {spec!r}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ReproError(f"malformed graph file {spec!r}: {exc}") from exc
    if ccr is not None:
        graph = rescale_ccr(graph, ccr)
    return graph


def _platform_from_args(args: argparse.Namespace) -> CellPlatform:
    base = (
        CellPlatform.playstation3()
        if args.platform == "ps3"
        else CellPlatform.qs22()
    )
    if args.spes is not None:
        base = base.with_spes(args.spes)
    return base


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "graph",
        help="built-in graph name (graph1/graph2/graph3/audio/video/crypto) "
        "or path to a JSON graph file",
    )
    parser.add_argument(
        "--ccr", type=float, default=None, help="rescale the graph to this CCR"
    )
    parser.add_argument(
        "--platform", choices=("qs22", "ps3"), default="qs22",
        help="hardware preset (default qs22: 1 PPE + 8 SPEs)",
    )
    parser.add_argument(
        "--spes", type=int, default=None, help="restrict the number of SPEs"
    )
    parser.add_argument(
        "--strategy",
        choices=tuple(sorted(STRATEGIES)) + ("ppe",),
        default="milp",
        help="mapping strategy (default: the paper's MILP)",
    )


def _compute_mapping(args: argparse.Namespace) -> Mapping:
    graph = _load_graph(args.graph, args.ccr)
    platform = _platform_from_args(args)
    if args.strategy == "ppe":
        return Mapping.all_on_ppe(graph, platform)
    return build_mapping(args.strategy, graph, platform)


def main_solve(argv: Optional[list] = None) -> int:
    """Compute and display a mapping; optionally dump it as JSON."""
    parser = argparse.ArgumentParser(
        prog="repro-solve", description=main_solve.__doc__
    )
    _add_common(parser)
    parser.add_argument("--json", action="store_true", help="emit JSON")
    parser.add_argument(
        "--mapping-out", default=None, metavar="FILE",
        help="write the computed mapping to FILE (reusable by repro-simulate)",
    )
    args = parser.parse_args(argv)
    try:
        mapping = _compute_mapping(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.mapping_out:
        with open(args.mapping_out, "w") as fh:
            fh.write(mapping.to_json())
    analysis = analyze(mapping)
    if args.json:
        print(
            json.dumps(
                {
                    "graph": mapping.graph.name,
                    "platform": mapping.platform.name,
                    "assignment": mapping.to_dict(),
                    "period_us": analysis.period,
                    "throughput_per_s": analysis.throughput * 1e6,
                    "feasible": analysis.feasible,
                },
                indent=2,
            )
        )
    else:
        print(mapping.summary())
        print(analysis.report())
    return 0


def main_simulate(argv: Optional[list] = None) -> int:
    """Map a graph, then run the discrete-event Cell simulator on it."""
    parser = argparse.ArgumentParser(
        prog="repro-simulate", description=main_simulate.__doc__
    )
    _add_common(parser)
    parser.add_argument(
        "--instances", type=int, default=1000, help="stream length"
    )
    parser.add_argument(
        "--ideal", action="store_true",
        help="zero-overhead simulation (matches the analytic model)",
    )
    parser.add_argument(
        "--mapping", default=None, metavar="FILE",
        help="simulate a mapping saved by repro-solve --mapping-out "
        "instead of computing one",
    )
    args = parser.parse_args(argv)
    try:
        if args.mapping:
            graph = _load_graph(args.graph, args.ccr)
            platform = _platform_from_args(args)
            with open(args.mapping) as fh:
                mapping = Mapping.from_json(graph, platform, fh.read())
        else:
            mapping = _compute_mapping(args)
        config = SimConfig.ideal() if args.ideal else SimConfig.realistic()
        result = simulate(mapping, args.instances, config)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(mapping.summary())
    print(result.summary())
    return 0


def main_experiment(argv: Optional[list] = None) -> int:
    """Regenerate a figure or table of the paper's evaluation (§6)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment", description=main_experiment.__doc__
    )
    parser.add_argument(
        "which",
        choices=("fig6", "fig7", "fig8", "tables", "coschedule", "online"),
        help="which artefact to regenerate (coschedule: the workload-layer "
        "experiment beyond the paper; online: the dynamic "
        "arrival/departure/failure runtime sweep)",
    )
    parser.add_argument(
        "--instances", type=int, default=None,
        help="stream length per simulation (defaults per experiment)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan sweep points over N worker processes "
        "(default: serial; -1 = all CPU cores)",
    )
    parser.add_argument(
        "--strategies", default=None, metavar="A,B,...",
        help="comma-separated strategies to sweep for fig7/fig8/coschedule "
        f"(default: the paper's; choose from {', '.join(sorted(STRATEGIES))})",
    )
    parser.add_argument(
        "--apps", default=None, metavar="A,B[=W],...",
        help="coschedule only: comma-separated applications, each "
        "optionally weighted as name=weight "
        f"(default: {','.join(coschedule.DEFAULT_APPS)}; choose from "
        f"{', '.join(sorted(coschedule.APP_BUILDERS))})",
    )
    parser.add_argument(
        "--objective", choices=OBJECTIVES, default="period",
        help="coschedule only: scheduling objective (default: period)",
    )
    parser.add_argument(
        "--spe-counts", default=None, metavar="N,N,...",
        help="coschedule only: SPE counts to sweep "
        "(default: 0..8)",
    )
    parser.add_argument(
        "--loads", default=None, metavar="L,L,...",
        help="online only: offered loads (expected concurrently-resident "
        "apps) to sweep "
        f"(default: {','.join(map(str, online.DEFAULT_LOADS))})",
    )
    parser.add_argument(
        "--budgets", default=None, metavar="B,B,...",
        help="online only: migration budgets to sweep "
        f"(default: {','.join(map(str, online.DEFAULT_BUDGETS))})",
    )
    parser.add_argument(
        "--events", type=int, default=None, metavar="N",
        help="online only: events per scenario "
        f"(default: {online.DEFAULT_EVENTS})",
    )
    parser.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="online only: base scenario seed (default: 0)",
    )
    parser.add_argument(
        "--failures", type=int, default=None, metavar="N",
        help="online only: SPE failure/recovery pairs per scenario "
        "(default: 1)",
    )
    parser.add_argument(
        "--mean-downtime", type=float, default=None, metavar="T",
        help="online only: mean SPE outage duration "
        "(default: the scenario's mean service time)",
    )
    parser.add_argument(
        "--timeline", default=None, metavar="FILE",
        help="online only: replay a saved JSON timeline instead of "
        "generating scenarios (contradicts --loads/--events/--seed/"
        "--failures/--mean-downtime)",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="online only: run with instrumentation and write the "
        "merged cross-worker metrics registry (counters, gauges, "
        "latency histograms) as JSON",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="online only: run with span tracing and write a Chrome "
        "trace-event JSON file (load in Perfetto or chrome://tracing)",
    )
    args = parser.parse_args(argv)
    if args.which in ("fig6", "tables") and args.jobs not in (None, 0, 1):
        print(
            f"note: {args.which} has no sweep to fan out; --jobs ignored",
            file=sys.stderr,
        )
    if args.which != "coschedule":
        for flag, given in (
            ("--apps", args.apps is not None),
            ("--spe-counts", args.spe_counts is not None),
        ):
            if given:
                print(
                    f"note: {flag} only applies to coschedule; ignored",
                    file=sys.stderr,
                )
    if args.which not in ("coschedule", "online"):
        if args.objective != "period":
            print(
                "note: --objective only applies to coschedule/online; "
                "ignored",
                file=sys.stderr,
            )
    elif args.instances is not None:
        print(
            f"note: {args.which} is analytic (no simulation); "
            "--instances ignored",
            file=sys.stderr,
        )
    if args.which != "online":
        for flag, given in (
            ("--loads", args.loads is not None),
            ("--budgets", args.budgets is not None),
            ("--events", args.events is not None),
            ("--seed", args.seed is not None),
            ("--failures", args.failures is not None),
            ("--mean-downtime", args.mean_downtime is not None),
            ("--timeline", args.timeline is not None),
            ("--metrics", args.metrics is not None),
            ("--trace", args.trace is not None),
        ):
            if given:
                print(
                    f"note: {flag} only applies to online; ignored",
                    file=sys.stderr,
                )
    elif args.strategies is not None:
        print(
            "note: online has no strategy sweep; --strategies ignored",
            file=sys.stderr,
        )
    strategies = None
    if args.strategies is not None:
        strategies = tuple(
            name.strip() for name in args.strategies.split(",") if name.strip()
        )
        if not strategies:
            print(
                "error: --strategies is empty; "
                f"pick from {', '.join(sorted(STRATEGIES))}",
                file=sys.stderr,
            )
            return 1
        unknown = sorted(set(strategies) - set(STRATEGIES))
        if unknown:
            print(
                f"error: unknown strategies {', '.join(unknown)}; "
                f"pick from {', '.join(sorted(STRATEGIES))}",
                file=sys.stderr,
            )
            return 1
        if args.which in ("fig6", "tables"):
            print(
                f"note: {args.which} has a fixed strategy set; "
                "--strategies ignored",
                file=sys.stderr,
            )
    apps = None
    if args.apps is not None:
        apps = tuple(
            name.strip() for name in args.apps.split(",") if name.strip()
        )
        if not apps:
            print(
                "error: --apps is empty; "
                f"pick from {', '.join(sorted(coschedule.APP_BUILDERS))}",
                file=sys.stderr,
            )
            return 1
        # Duplicate app names fail fast too: build_workload raises a
        # UsageError before any sweep work, printed by the handler below.
    spe_counts = None
    if args.spe_counts is not None:
        try:
            spe_counts = tuple(
                int(part) for part in args.spe_counts.split(",") if part.strip()
            )
        except ValueError:
            print(
                f"error: bad --spe-counts {args.spe_counts!r}; "
                "want comma-separated integers",
                file=sys.stderr,
            )
            return 1
        if not spe_counts:
            print(
                "error: --spe-counts is empty; want comma-separated integers",
                file=sys.stderr,
            )
            return 1
    loads = None
    if args.loads is not None:
        try:
            loads = tuple(
                float(part) for part in args.loads.split(",") if part.strip()
            )
        except ValueError:
            print(
                f"error: bad --loads {args.loads!r}; "
                "want comma-separated positive numbers",
                file=sys.stderr,
            )
            return 1
        if not loads or any(load <= 0 for load in loads):
            print(
                "error: --loads wants one or more positive numbers",
                file=sys.stderr,
            )
            return 1
    budgets = None
    if args.budgets is not None:
        try:
            budgets = tuple(
                int(part) for part in args.budgets.split(",") if part.strip()
            )
        except ValueError:
            print(
                f"error: bad --budgets {args.budgets!r}; "
                "want comma-separated non-negative integers",
                file=sys.stderr,
            )
            return 1
        if not budgets or any(budget < 0 for budget in budgets):
            print(
                "error: --budgets wants one or more non-negative integers",
                file=sys.stderr,
            )
            return 1
    if args.which == "online" and args.events is not None and args.events < 2:
        print(
            f"error: --events must be at least 2 (got {args.events})",
            file=sys.stderr,
        )
        return 1
    try:
        if args.which == "fig6":
            fig6_rampup.main(n_instances=args.instances or 3000, jobs=args.jobs)
        elif args.which == "fig7":
            fig7_speedup.main(
                n_instances=args.instances or 1000,
                jobs=args.jobs,
                strategies=strategies,
            )
        elif args.which == "fig8":
            fig8_ccr.main(
                n_instances=args.instances or 1000,
                jobs=args.jobs,
                strategies=strategies,
            )
        elif args.which == "coschedule":
            coschedule.main(
                apps=apps,
                objective=args.objective,
                strategies=strategies,
                spe_counts=spe_counts,
                jobs=args.jobs,
            )
        elif args.which == "online":
            timeline = (
                load_timeline(args.timeline)
                if args.timeline is not None
                else None
            )
            online.main(
                loads=loads,
                budgets=budgets,
                n_events=args.events,
                objective=args.objective,
                seed=args.seed,
                jobs=args.jobs,
                n_failures=args.failures,
                mean_downtime=args.mean_downtime,
                timeline=timeline,
                metrics=args.metrics,
                trace=args.trace,
            )
        else:
            tables.main()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0
