"""Command-line interface.

Four entry points (installed as console scripts):

* ``repro-solve``      — compute a mapping (MILP or heuristic) for a graph;
* ``repro-simulate``   — run the discrete-event simulator on a mapping;
* ``repro-experiment`` — regenerate a figure/table of the paper;
* ``repro-serve``      — run the durable asyncio scheduler service over a
  seeded (or replayed) event timeline, with optional journal, checkpoint
  and ``/stats`` endpoint.

Graphs are referenced either by a built-in name (``graph1``, ``graph2``,
``graph3``, ``audio``, ``video``, ``crypto``) or by a path to a JSON file
produced by :func:`repro.graph.save`.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import Optional

from . import apps
from .errors import ReproError
from .generator.paper_graphs import (
    random_graph_1,
    random_graph_2,
    random_graph_3,
)
from .generator.costs import rescale_ccr
from .graph import io as graph_io
from .graph.stream_graph import StreamGraph
from .experiments import (
    STRATEGIES,
    build_mapping,
    coschedule,
    fig6_rampup,
    fig7_speedup,
    fig8_ccr,
    online,
    service as service_experiment,
    tables,
)
from .obs import metrics as _metrics
from .runtime.faults import load_timeline
from .runtime.scenario import ScenarioGenerator
from .runtime.scheduler import OnlineScheduler
from .runtime.service import SchedulerService, play
from .steady_state.objective import OBJECTIVES
from .platform.cell import CellPlatform
from .simulator import SimConfig, simulate
from .steady_state.mapping import Mapping
from .steady_state.throughput import analyze

__all__ = ["main_solve", "main_simulate", "main_experiment", "main_serve"]

_BUILTIN_GRAPHS = {
    "graph1": random_graph_1,
    "graph2": random_graph_2,
    "graph3": random_graph_3,
    "audio": apps.audio_encoder,
    "video": apps.video_pipeline,
    "crypto": apps.crypto_pipeline,
}


def _load_graph(spec: str, ccr: Optional[float]) -> StreamGraph:
    if spec in _BUILTIN_GRAPHS:
        graph = _BUILTIN_GRAPHS[spec]()
    else:
        try:
            graph = graph_io.load(spec)
        except OSError as exc:
            raise ReproError(f"cannot read graph file {spec!r}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise ReproError(f"malformed graph file {spec!r}: {exc}") from exc
    if ccr is not None:
        graph = rescale_ccr(graph, ccr)
    return graph


def _platform_from_args(args: argparse.Namespace) -> CellPlatform:
    base = (
        CellPlatform.playstation3()
        if args.platform == "ps3"
        else CellPlatform.qs22()
    )
    if args.spes is not None:
        base = base.with_spes(args.spes)
    return base


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "graph",
        help="built-in graph name (graph1/graph2/graph3/audio/video/crypto) "
        "or path to a JSON graph file",
    )
    parser.add_argument(
        "--ccr", type=float, default=None, help="rescale the graph to this CCR"
    )
    parser.add_argument(
        "--platform", choices=("qs22", "ps3"), default="qs22",
        help="hardware preset (default qs22: 1 PPE + 8 SPEs)",
    )
    parser.add_argument(
        "--spes", type=int, default=None, help="restrict the number of SPEs"
    )
    parser.add_argument(
        "--strategy",
        choices=tuple(sorted(STRATEGIES)) + ("ppe",),
        default="milp",
        help="mapping strategy (default: the paper's MILP)",
    )


def _compute_mapping(args: argparse.Namespace) -> Mapping:
    graph = _load_graph(args.graph, args.ccr)
    platform = _platform_from_args(args)
    if args.strategy == "ppe":
        return Mapping.all_on_ppe(graph, platform)
    return build_mapping(args.strategy, graph, platform)


def main_solve(argv: Optional[list] = None) -> int:
    """Compute and display a mapping; optionally dump it as JSON."""
    parser = argparse.ArgumentParser(
        prog="repro-solve", description=main_solve.__doc__
    )
    _add_common(parser)
    parser.add_argument("--json", action="store_true", help="emit JSON")
    parser.add_argument(
        "--mapping-out", default=None, metavar="FILE",
        help="write the computed mapping to FILE (reusable by repro-simulate)",
    )
    args = parser.parse_args(argv)
    try:
        mapping = _compute_mapping(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.mapping_out:
        with open(args.mapping_out, "w") as fh:
            fh.write(mapping.to_json())
    analysis = analyze(mapping)
    if args.json:
        print(
            json.dumps(
                {
                    "graph": mapping.graph.name,
                    "platform": mapping.platform.name,
                    "assignment": mapping.to_dict(),
                    "period_us": analysis.period,
                    "throughput_per_s": analysis.throughput * 1e6,
                    "feasible": analysis.feasible,
                },
                indent=2,
            )
        )
    else:
        print(mapping.summary())
        print(analysis.report())
    return 0


def main_simulate(argv: Optional[list] = None) -> int:
    """Map a graph, then run the discrete-event Cell simulator on it."""
    parser = argparse.ArgumentParser(
        prog="repro-simulate", description=main_simulate.__doc__
    )
    _add_common(parser)
    parser.add_argument(
        "--instances", type=int, default=1000, help="stream length"
    )
    parser.add_argument(
        "--ideal", action="store_true",
        help="zero-overhead simulation (matches the analytic model)",
    )
    parser.add_argument(
        "--mapping", default=None, metavar="FILE",
        help="simulate a mapping saved by repro-solve --mapping-out "
        "instead of computing one",
    )
    args = parser.parse_args(argv)
    try:
        if args.mapping:
            graph = _load_graph(args.graph, args.ccr)
            platform = _platform_from_args(args)
            with open(args.mapping) as fh:
                mapping = Mapping.from_json(graph, platform, fh.read())
        else:
            mapping = _compute_mapping(args)
        config = SimConfig.ideal() if args.ideal else SimConfig.realistic()
        result = simulate(mapping, args.instances, config)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(mapping.summary())
    print(result.summary())
    return 0


def main_experiment(argv: Optional[list] = None) -> int:
    """Regenerate a figure or table of the paper's evaluation (§6)."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment", description=main_experiment.__doc__
    )
    parser.add_argument(
        "which",
        choices=(
            "fig6", "fig7", "fig8", "tables", "coschedule", "online",
            "service",
        ),
        help="which artefact to regenerate (coschedule: the workload-layer "
        "experiment beyond the paper; online: the dynamic "
        "arrival/departure/failure runtime sweep; service: the asyncio "
        "serving-loop latency sweep over admission batch sizes)",
    )
    parser.add_argument(
        "--instances", type=int, default=None,
        help="stream length per simulation (defaults per experiment)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan sweep points over N worker processes "
        "(default: serial; -1 = all CPU cores)",
    )
    parser.add_argument(
        "--strategies", default=None, metavar="A,B,...",
        help="comma-separated strategies to sweep for fig7/fig8/coschedule "
        f"(default: the paper's; choose from {', '.join(sorted(STRATEGIES))})",
    )
    parser.add_argument(
        "--apps", default=None, metavar="A,B[=W],...",
        help="coschedule only: comma-separated applications, each "
        "optionally weighted as name=weight "
        f"(default: {','.join(coschedule.DEFAULT_APPS)}; choose from "
        f"{', '.join(sorted(coschedule.APP_BUILDERS))})",
    )
    parser.add_argument(
        "--objective", choices=OBJECTIVES, default="period",
        help="coschedule only: scheduling objective (default: period)",
    )
    parser.add_argument(
        "--spe-counts", default=None, metavar="N,N,...",
        help="coschedule only: SPE counts to sweep "
        "(default: 0..8)",
    )
    parser.add_argument(
        "--loads", default=None, metavar="L,L,...",
        help="online/service: offered loads (expected concurrently-resident "
        "apps); online sweeps several, service takes exactly one "
        f"(defaults: {','.join(map(str, online.DEFAULT_LOADS))} / "
        f"{service_experiment.DEFAULT_LOAD})",
    )
    parser.add_argument(
        "--budgets", default=None, metavar="B,B,...",
        help="online/service: migration budgets to sweep "
        f"(default: {','.join(map(str, online.DEFAULT_BUDGETS))})",
    )
    parser.add_argument(
        "--batches", default=None, metavar="B,B,...",
        help="service only: admission batch sizes to sweep "
        f"(default: {','.join(map(str, service_experiment.DEFAULT_BATCHES))})",
    )
    parser.add_argument(
        "--events", type=int, default=None, metavar="N",
        help="online/service: events per scenario "
        f"(defaults: {online.DEFAULT_EVENTS} / "
        f"{service_experiment.DEFAULT_EVENTS})",
    )
    parser.add_argument(
        "--seed", type=int, default=None, metavar="N",
        help="online/service: base scenario seed (default: 0)",
    )
    parser.add_argument(
        "--failures", type=int, default=None, metavar="N",
        help="online/service: SPE failure/recovery pairs per scenario "
        "(default: 1)",
    )
    parser.add_argument(
        "--mean-downtime", type=float, default=None, metavar="T",
        help="online only: mean SPE outage duration "
        "(default: the scenario's mean service time)",
    )
    parser.add_argument(
        "--timeline", default=None, metavar="FILE",
        help="online only: replay a saved JSON timeline instead of "
        "generating scenarios (contradicts --loads/--events/--seed/"
        "--failures/--mean-downtime)",
    )
    parser.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="online/service: run with instrumentation and write the "
        "merged cross-worker metrics registry (counters, gauges, "
        "latency histograms) as JSON",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="online only: run with span tracing and write a Chrome "
        "trace-event JSON file (load in Perfetto or chrome://tracing)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="online only: wrap every sweep point in a durable scheduler "
        "writing a journal plus a checkpoint every N events "
        "(see --checkpoint-dir)",
    )
    parser.add_argument(
        "--checkpoint-dir", default=None, metavar="DIR",
        help="online only: directory for the per-point journals and "
        "checkpoints (default: online-checkpoints, created on demand)",
    )
    args = parser.parse_args(argv)
    if args.which in ("fig6", "tables") and args.jobs not in (None, 0, 1):
        print(
            f"note: {args.which} has no sweep to fan out; --jobs ignored",
            file=sys.stderr,
        )
    if args.which != "coschedule":
        for flag, given in (
            ("--apps", args.apps is not None),
            ("--spe-counts", args.spe_counts is not None),
        ):
            if given:
                print(
                    f"note: {flag} only applies to coschedule; ignored",
                    file=sys.stderr,
                )
    if args.which not in ("coschedule", "online", "service"):
        if args.objective != "period":
            print(
                "note: --objective only applies to coschedule/online/"
                "service; ignored",
                file=sys.stderr,
            )
    elif args.instances is not None:
        print(
            f"note: {args.which} is analytic (no simulation); "
            "--instances ignored",
            file=sys.stderr,
        )
    if args.which not in ("online", "service"):
        for flag, given in (
            ("--loads", args.loads is not None),
            ("--budgets", args.budgets is not None),
            ("--events", args.events is not None),
            ("--seed", args.seed is not None),
            ("--failures", args.failures is not None),
            ("--metrics", args.metrics is not None),
        ):
            if given:
                print(
                    f"note: {flag} only applies to online/service; ignored",
                    file=sys.stderr,
                )
    elif args.strategies is not None:
        print(
            f"note: {args.which} has no strategy sweep; "
            "--strategies ignored",
            file=sys.stderr,
        )
    if args.which != "online":
        for flag, given in (
            ("--mean-downtime", args.mean_downtime is not None),
            ("--timeline", args.timeline is not None),
            ("--trace", args.trace is not None),
            ("--checkpoint-every", args.checkpoint_every is not None),
            ("--checkpoint-dir", args.checkpoint_dir is not None),
        ):
            if given:
                print(
                    f"note: {flag} only applies to online; ignored",
                    file=sys.stderr,
                )
    if args.which != "service" and args.batches is not None:
        print(
            "note: --batches only applies to service; ignored",
            file=sys.stderr,
        )
    strategies = None
    if args.strategies is not None:
        strategies = tuple(
            name.strip() for name in args.strategies.split(",") if name.strip()
        )
        if not strategies:
            print(
                "error: --strategies is empty; "
                f"pick from {', '.join(sorted(STRATEGIES))}",
                file=sys.stderr,
            )
            return 1
        unknown = sorted(set(strategies) - set(STRATEGIES))
        if unknown:
            print(
                f"error: unknown strategies {', '.join(unknown)}; "
                f"pick from {', '.join(sorted(STRATEGIES))}",
                file=sys.stderr,
            )
            return 1
        if args.which in ("fig6", "tables"):
            print(
                f"note: {args.which} has a fixed strategy set; "
                "--strategies ignored",
                file=sys.stderr,
            )
    apps = None
    if args.apps is not None:
        apps = tuple(
            name.strip() for name in args.apps.split(",") if name.strip()
        )
        if not apps:
            print(
                "error: --apps is empty; "
                f"pick from {', '.join(sorted(coschedule.APP_BUILDERS))}",
                file=sys.stderr,
            )
            return 1
        # Duplicate app names fail fast too: build_workload raises a
        # UsageError before any sweep work, printed by the handler below.
    spe_counts = None
    if args.spe_counts is not None:
        try:
            spe_counts = tuple(
                int(part) for part in args.spe_counts.split(",") if part.strip()
            )
        except ValueError:
            print(
                f"error: bad --spe-counts {args.spe_counts!r}; "
                "want comma-separated integers",
                file=sys.stderr,
            )
            return 1
        if not spe_counts:
            print(
                "error: --spe-counts is empty; want comma-separated integers",
                file=sys.stderr,
            )
            return 1
    loads = None
    if args.loads is not None:
        try:
            loads = tuple(
                float(part) for part in args.loads.split(",") if part.strip()
            )
        except ValueError:
            print(
                f"error: bad --loads {args.loads!r}; "
                "want comma-separated positive numbers",
                file=sys.stderr,
            )
            return 1
        if not loads or any(load <= 0 for load in loads):
            print(
                "error: --loads wants one or more positive numbers",
                file=sys.stderr,
            )
            return 1
    budgets = None
    if args.budgets is not None:
        try:
            budgets = tuple(
                int(part) for part in args.budgets.split(",") if part.strip()
            )
        except ValueError:
            print(
                f"error: bad --budgets {args.budgets!r}; "
                "want comma-separated non-negative integers",
                file=sys.stderr,
            )
            return 1
        if not budgets or any(budget < 0 for budget in budgets):
            print(
                "error: --budgets wants one or more non-negative integers",
                file=sys.stderr,
            )
            return 1
    batches = None
    if args.batches is not None:
        try:
            batches = tuple(
                int(part) for part in args.batches.split(",") if part.strip()
            )
        except ValueError:
            print(
                f"error: bad --batches {args.batches!r}; "
                "want comma-separated positive integers",
                file=sys.stderr,
            )
            return 1
        if not batches or any(batch < 1 for batch in batches):
            print(
                "error: --batches wants one or more positive integers",
                file=sys.stderr,
            )
            return 1
    if (
        args.which in ("online", "service")
        and args.events is not None
        and args.events < 2
    ):
        print(
            f"error: --events must be at least 2 (got {args.events})",
            file=sys.stderr,
        )
        return 1
    if args.which == "service" and loads is not None and len(loads) != 1:
        print(
            "error: service sweeps admission batches at one offered load; "
            "give a single --loads value",
            file=sys.stderr,
        )
        return 1
    if args.checkpoint_every is not None and args.checkpoint_every < 0:
        print(
            "error: --checkpoint-every must be non-negative "
            f"(got {args.checkpoint_every})",
            file=sys.stderr,
        )
        return 1
    try:
        if args.which == "fig6":
            fig6_rampup.main(n_instances=args.instances or 3000, jobs=args.jobs)
        elif args.which == "fig7":
            fig7_speedup.main(
                n_instances=args.instances or 1000,
                jobs=args.jobs,
                strategies=strategies,
            )
        elif args.which == "fig8":
            fig8_ccr.main(
                n_instances=args.instances or 1000,
                jobs=args.jobs,
                strategies=strategies,
            )
        elif args.which == "coschedule":
            coschedule.main(
                apps=apps,
                objective=args.objective,
                strategies=strategies,
                spe_counts=spe_counts,
                jobs=args.jobs,
            )
        elif args.which == "online":
            timeline = (
                load_timeline(args.timeline)
                if args.timeline is not None
                else None
            )
            checkpoint_dir = args.checkpoint_dir
            if args.checkpoint_every and checkpoint_dir is None:
                checkpoint_dir = "online-checkpoints"
            online.main(
                loads=loads,
                budgets=budgets,
                n_events=args.events,
                objective=args.objective,
                seed=args.seed,
                jobs=args.jobs,
                n_failures=args.failures,
                mean_downtime=args.mean_downtime,
                timeline=timeline,
                metrics=args.metrics,
                trace=args.trace,
                checkpoint_every=args.checkpoint_every,
                checkpoint_dir=checkpoint_dir,
            )
        elif args.which == "service":
            service_experiment.main(
                batches=batches,
                budgets=budgets,
                load=loads[0] if loads else None,
                n_events=args.events,
                objective=args.objective,
                seed=args.seed,
                jobs=args.jobs,
                n_failures=args.failures,
                metrics=args.metrics,
            )
        else:
            tables.main()
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


async def _serve(args: argparse.Namespace) -> int:
    platform = _platform_from_args(args)
    if args.timeline is not None:
        events = load_timeline(args.timeline)
    else:
        events = ScenarioGenerator(
            platform,
            seed=args.seed,
            load=args.load,
            n_failures=args.failures,
        ).generate(args.events)
    if args.metrics:
        _metrics.enable()
    scheduler = OnlineScheduler(
        platform,
        objective=args.objective,
        migration_budget=args.budget,
    )
    # Default queue sizing admits the whole timeline without shedding
    # (the replay is a burst); an explicit --max-queue exercises the
    # watermark backpressure instead.
    if args.max_queue is not None:
        queue_kwargs = dict(max_queue=args.max_queue)
    else:
        queue_kwargs = dict(
            max_queue=len(events) + 1, high_watermark=len(events) + 1
        )
    service = SchedulerService(
        scheduler,
        admission_batch=args.batch,
        default_timeout=args.timeout,
        journal_path=args.journal,
        checkpoint_path=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        **queue_kwargs,
    )
    server = None
    try:
        if args.stats_port is not None:
            server, port = await service.serve_stats(port=args.stats_port)
            print(f"stats endpoint: http://127.0.0.1:{port}/stats")
        await service.start()
        responses = await play(service, events, timeout=args.timeout)
        report = await service.stop()
    finally:
        if server is not None:
            server.close()
            await server.wait_closed()
    print(report.table())
    rejected = [r for r in responses if r.status == "rejected"]
    errored = [r for r in responses if r.status == "error"]
    line = (
        f"service: {len(responses)} requests, "
        f"{len(responses) - len(rejected) - len(errored)} processed, "
        f"{len(rejected)} rejected, {len(errored)} errored"
    )
    reasons = sorted({r.reason for r in rejected})
    if reasons:
        line += f" (rejection reasons: {', '.join(reasons)})"
    print(line)
    if args.stats_json:
        print(json.dumps(service.stats(), indent=2, sort_keys=True))
    if args.journal:
        print(f"journal written to {args.journal}")
    if args.checkpoint:
        print(f"checkpoint written to {args.checkpoint}")
    return 0


def main_serve(argv: Optional[list] = None) -> int:
    """Run the durable asyncio scheduler service over an event timeline.

    Generates a seeded scenario (or replays ``--timeline``), feeds it
    through :class:`~repro.runtime.service.SchedulerService` with the
    requested admission batch, queue bound and per-request timeout, and
    prints the final runtime report plus the service counters.  With
    ``--journal``/``--checkpoint`` the run is durable: kill it at any
    point and ``DurableScheduler.recover`` replays to the identical
    report.
    """
    parser = argparse.ArgumentParser(
        prog="repro-serve", description=main_serve.__doc__
    )
    parser.add_argument(
        "--platform", choices=("qs22", "ps3"), default="qs22",
        help="hardware preset (default qs22: 1 PPE + 8 SPEs)",
    )
    parser.add_argument(
        "--spes", type=int, default=None, help="restrict the number of SPEs"
    )
    parser.add_argument(
        "--objective", choices=OBJECTIVES, default="period",
        help="scheduling objective (default: period)",
    )
    parser.add_argument(
        "--budget", type=int, default=4, metavar="N",
        help="migration budget per repair event (default: 4)",
    )
    parser.add_argument(
        "--events", type=int, default=32, metavar="N",
        help="events in the generated scenario (default: 32)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="scenario seed (default: 0)",
    )
    parser.add_argument(
        "--load", type=float, default=2.0, metavar="L",
        help="offered load of the generated scenario (default: 2.0)",
    )
    parser.add_argument(
        "--failures", type=int, default=1, metavar="N",
        help="SPE failure/recovery pairs in the scenario (default: 1)",
    )
    parser.add_argument(
        "--timeline", default=None, metavar="FILE",
        help="replay a saved JSON timeline instead of generating one "
        "(contradicts --events/--seed/--load/--failures)",
    )
    parser.add_argument(
        "--batch", type=int, default=4, metavar="N",
        help="admission batch per serving-loop iteration (default: 4)",
    )
    parser.add_argument(
        "--max-queue", type=int, default=None, metavar="N",
        help="bound the request queue (watermark backpressure kicks in "
        "at 3/4 of this); default: sized to admit the whole timeline",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-request deadline; requests unresolved at the deadline "
        "are rejected with reason deadline-exceeded (default: none)",
    )
    parser.add_argument(
        "--journal", default=None, metavar="FILE",
        help="write the fsync'd event journal to FILE (enables recovery)",
    )
    parser.add_argument(
        "--checkpoint", default=None, metavar="FILE",
        help="write recovery checkpoints to FILE (requires --journal)",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="N",
        help="checkpoint every N committed events (0: only at shutdown)",
    )
    parser.add_argument(
        "--stats-port", type=int, default=None, metavar="PORT",
        help="serve /stats, /metrics and /healthz on this port while "
        "running (0 picks a free port)",
    )
    parser.add_argument(
        "--stats-json", action="store_true",
        help="print the final service counters as JSON",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="enable the in-process metrics registry (feeds /metrics "
        "and the latency histograms)",
    )
    args = parser.parse_args(argv)
    if args.events < 2:
        print(
            f"error: --events must be at least 2 (got {args.events})",
            file=sys.stderr,
        )
        return 1
    try:
        return asyncio.run(_serve(args))
    except (ReproError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
