"""Figure 8 — speed-up of the MILP mapping vs the CCR.

For each of the three graphs and each of the six CCR variants
(0.775 … 4.6), compute the MILP mapping on the 8-SPE QS22 and measure the
simulated speed-up over the PPE-only mapping.  The paper's finding: the
larger the CCR, the smaller the speed-up — big payloads mean big §4.2
buffers, so fewer tasks fit the SPE local stores and the mapping
degenerates toward the PPE ("eventually, the best policy is to map all
tasks to the PPE").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..generator.paper_graphs import PAPER_CCRS, ccr_variants
from ..platform.cell import CellPlatform
from ..simulator import SimConfig
from .common import (
    MeasuredPoint,
    SweepRef,
    ascii_plot,
    kernel_note,
    speedup_of_point,
    validate_strategies,
)
from .parallel import point_seed, run_sweep

__all__ = ["Fig8Result", "run", "main"]


@dataclass(frozen=True)
class Fig8Result:
    """Speed-up vs CCR, one series per graph."""

    points: List[MeasuredPoint]

    def series(self) -> Dict[str, List[Tuple[float, float]]]:
        out: Dict[str, List[Tuple[float, float]]] = {}
        for p in self.points:
            out.setdefault(p.series, []).append((p.x, p.y))
        for values in out.values():
            values.sort()
        return out

    def table(self) -> str:
        series = self.series()
        names = sorted(series)
        ccrs = sorted({x for pts in series.values() for x, _ in pts})
        header = "  CCR  " + "  ".join(f"{n:>16}" for n in names)
        rows = [
            "Figure 8 — speed-up vs CCR (MILP mapping, 8 SPEs)"
            + kernel_note(),
            header,
        ]
        for ccr in ccrs:
            cells = []
            for name in names:
                match = [y for x, y in series[name] if x == ccr]
                cells.append(f"{match[0]:16.2f}" if match else " " * 16)
            rows.append(f"{ccr:5.3f}  " + "  ".join(cells))
        return "\n".join(rows)


def run(
    ccrs: Sequence[float] = PAPER_CCRS,
    graph_ids: Sequence[int] = (1, 2, 3),
    n_instances: int = 1000,
    config: Optional[SimConfig] = None,
    platform: Optional[CellPlatform] = None,
    strategy: str = "milp",
    jobs: Optional[int] = None,
) -> Fig8Result:
    """Regenerate Fig. 8 (optionally for another strategy/platform).

    Each (graph, CCR) point is independent — its own MILP solve plus two
    simulations — so ``jobs`` fans them across worker processes.
    """
    (strategy,) = validate_strategies((strategy,))  # fail fast, not in a worker
    config = config or SimConfig.realistic()
    platform = platform or CellPlatform.qs22()
    # Baseline: PPE-only throughput per variant.  Compute costs are
    # CCR-invariant, but memory I/O scales, so the baseline is measured
    # per point for fairness (inside the sweep worker).
    # The platform and sim config are shared by every point: ship them
    # once per worker through the sweep context.  The CCR graph variants
    # are *per point* (each used by exactly one spec), so they stay
    # inline — putting them in `common` would ship the whole variant set
    # to every worker instead of each variant to one.
    common = {"platform": platform, "config": config}
    platform_ref, config_ref = SweepRef("platform"), SweepRef("config")
    specs = []
    keys: List[Tuple[int, float]] = []
    for graph_id in graph_ids:
        variants = ccr_variants(graph_id)
        for ccr in ccrs:
            seed = point_seed("fig8", graph_id, ccr, strategy)
            specs.append(
                (
                    variants[ccr], platform_ref, strategy,
                    n_instances, config_ref, seed,
                )
            )
            keys.append((graph_id, ccr))
    results = run_sweep(speedup_of_point, specs, jobs=jobs, common=common)
    points = [
        MeasuredPoint(
            series=f"random graph {graph_id}",
            x=ccr,
            y=ratio,
            detail=f"{n_on_spes} tasks on SPEs",
        )
        for (graph_id, ccr), (ratio, n_on_spes) in zip(keys, results)
    ]
    return Fig8Result(points=points)


def main(
    n_instances: int = 1000,
    jobs: Optional[int] = None,
    strategies: Optional[Sequence[str]] = None,
) -> List[Fig8Result]:
    """CLI entry: print the Fig. 8 table and plot (one per strategy)."""
    results = []
    for strategy in strategies or ("milp",):
        result = run(n_instances=n_instances, jobs=jobs, strategy=strategy)
        print(f"strategy: {strategy}")
        print(result.table())
        print(ascii_plot(result.points, x_label="CCR", y_label="speed-up"))
        results.append(result)
    return results
