"""Textual claims of §6 as reproducible tables.

* **Solve-time table** — the paper reports that with a 5 % gap every linear
  program solved in under one minute, typically ≈20 s (CPLEX).  We time
  HiGHS on the same 3 graphs × 6 CCR grid.
* **β-ablation table** — DESIGN.md calls out the β-relaxation (continuous
  edge variables); this table compares solve times and objectives of the
  relaxed vs the paper-literal integral-β formulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..generator.paper_graphs import PAPER_CCRS, ccr_variants
from ..milp import PAPER_MIP_GAP, build_formulation, solve_optimal_mapping
from ..platform.cell import CellPlatform

__all__ = ["SolveRecord", "solve_time_table", "beta_ablation_table"]


@dataclass(frozen=True)
class SolveRecord:
    """One MILP solve: size, time, and decoded-mapping quality."""

    graph: str
    ccr: float
    n_vars: int
    n_integer: int
    n_constraints: int
    solve_time: float
    period: float
    status: str

    def row(self) -> str:
        return (
            f"{self.graph:>16}  {self.ccr:5.3f}  {self.n_vars:6d} "
            f"{self.n_integer:5d}  {self.n_constraints:6d}  "
            f"{self.solve_time:7.2f}s  {self.period:10.1f}  {self.status}"
        )


_HEADER = (
    f"{'graph':>16}  {'CCR':>5}  {'vars':>6} {'ints':>5}  {'constr':>6}  "
    f"{'time':>8}  {'period':>10}  status"
)


def solve_time_table(
    graph_ids: Sequence[int] = (1, 2, 3),
    ccrs: Sequence[float] = PAPER_CCRS,
    platform: Optional[CellPlatform] = None,
    mip_rel_gap: float = PAPER_MIP_GAP,
    time_limit: Optional[float] = 90.0,
) -> List[SolveRecord]:
    """Solve every (graph, CCR) pair, mirroring the paper's 18 programs."""
    platform = platform or CellPlatform.qs22()
    records: List[SolveRecord] = []
    for graph_id in graph_ids:
        variants = ccr_variants(graph_id)
        for ccr in ccrs:
            graph = variants[ccr]
            result = solve_optimal_mapping(
                graph, platform, mip_rel_gap=mip_rel_gap, time_limit=time_limit
            )
            model = result.formulation.model
            records.append(
                SolveRecord(
                    graph=graph.name.split("@")[0],
                    ccr=ccr,
                    n_vars=model.n_vars,
                    n_integer=model.n_integer_vars,
                    n_constraints=model.n_constraints,
                    solve_time=result.solve_time,
                    period=result.period,
                    status=result.solution.status,
                )
            )
    return records


def format_solve_table(records: Sequence[SolveRecord]) -> str:
    """Render :func:`solve_time_table` records as an aligned text table."""
    lines = ["MILP solve times (paper: < 60 s, typically ≈20 s with CPLEX)"]
    lines.append(_HEADER)
    lines += [r.row() for r in records]
    worst = max(r.solve_time for r in records)
    lines.append(f"max solve time: {worst:.2f}s")
    return "\n".join(lines)


def beta_ablation_table(
    graph_id: int = 1,
    ccr: float = PAPER_CCRS[0],
    platform: Optional[CellPlatform] = None,
    time_limit: Optional[float] = 300.0,
) -> str:
    """Compare the β-relaxed formulation with the paper-literal one."""
    platform = platform or CellPlatform.qs22()
    graph = ccr_variants(graph_id)[ccr]
    lines = [f"β ablation on {graph.name} ({platform.name})"]
    for integral in (False, True):
        label = "integral β (paper-literal)" if integral else "continuous β (ours)"
        result = solve_optimal_mapping(
            graph,
            platform,
            integral_beta=integral,
            time_limit=time_limit,
        )
        model = result.formulation.model
        lines.append(
            f"  {label:28}: {model.n_integer_vars:6d} binaries, "
            f"T={result.period:10.2f} µs, {result.solve_time:6.2f}s"
        )
    lines.append(
        "  (identical periods expected: constraints (1c)+(1d) force β "
        "integral once α is binary)"
    )
    return "\n".join(lines)


def strengthening_ablation_table(
    graph_id: int = 1,
    ccr: float = PAPER_CCRS[0],
    platform: Optional[CellPlatform] = None,
    time_limit: Optional[float] = 120.0,
) -> str:
    """Compare solver accelerations: none / T-bounds / +symmetry breaking.

    All three configurations are optimum-preserving, so the reported
    periods agree (within the 5 % gap); only solve times differ.
    """
    platform = platform or CellPlatform.qs22()
    graph = ccr_variants(graph_id)[ccr]
    from ..milp.formulation import build_formulation
    from ..milp.solve import _heuristic_upper_bound
    from ..lp.scipy_backend import solve as lp_solve

    ub = _heuristic_upper_bound(graph, platform)
    configs = [
        ("paper-literal (no cuts)", dict(strengthen=False)),
        ("+ T bounds (default)", dict(strengthen=True, period_upper_bound=ub)),
        (
            "+ symmetry breaking (S2)",
            dict(strengthen=True, period_upper_bound=ub, symmetry_breaking=True),
        ),
    ]
    lines = [f"strengthening ablation on {graph.name} ({platform.name})"]
    for label, kwargs in configs:
        formulation = build_formulation(graph, platform, **kwargs)
        solution = lp_solve(
            formulation.model, mip_rel_gap=PAPER_MIP_GAP, time_limit=time_limit
        )
        lines.append(
            f"  {label:26}: T={solution.value(formulation.T):10.2f} µs, "
            f"{solution.solve_time:6.2f}s"
        )
    return "\n".join(lines)


def main() -> None:
    """CLI entry: print all tables."""
    records = solve_time_table()
    print(format_solve_table(records))
    print()
    print(beta_ablation_table())
    print()
    print(strengthening_ablation_table())
