"""Figure 6 — throughput vs number of processed instances.

The paper's configuration: random graph 1 at CCR 0.775 on the QS22 with
all 8 SPEs, using the MILP mapping.  The curve ramps up while the pipeline
fills (~1000 instances) and settles at ≈95 % of the throughput predicted by
the linear program (§6.4.1).  We regenerate both series: the horizontal
"theoretical throughput" line (the LP prediction) and the measured running
throughput of the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..generator.paper_graphs import random_graph_1
from ..graph.stream_graph import StreamGraph
from ..milp import solve_optimal_mapping
from ..platform.cell import CellPlatform
from ..simulator import SimConfig, SimulationResult
from .common import (
    MeasuredPoint,
    ascii_plot,
    kernel_note,
    measure_throughput,
)

__all__ = ["Fig6Result", "run", "main"]


@dataclass(frozen=True)
class Fig6Result:
    """The two series of Fig. 6 plus the §6.4.1 summary numbers."""

    graph_name: str
    #: (instances processed, achieved instances/s) — experimental curve.
    curve: List[Tuple[int, float]]
    #: LP-predicted throughput, instances/s — the horizontal line.
    theoretical: float
    #: Steady-state measured throughput, instances/s.
    steady: float
    #: steady / theoretical — the paper reports ≈0.95.
    efficiency: float
    simulation: SimulationResult

    def points(self) -> List[MeasuredPoint]:
        pts = [
            MeasuredPoint("experimental", float(i), thr)
            for i, thr in self.curve
        ]
        if self.curve:
            lo, hi = self.curve[0][0], self.curve[-1][0]
            pts += [
                MeasuredPoint("theoretical", float(lo), self.theoretical),
                MeasuredPoint("theoretical", float(hi), self.theoretical),
            ]
        return pts

    def table(self) -> str:
        rows = [
            "instances  throughput(inst/s)",
        ]
        step = max(1, len(self.curve) // 20)
        for i, thr in self.curve[::step]:
            rows.append(f"{i:9d}  {thr:14.2f}")
        rows.append(f"theoretical: {self.theoretical:.2f} inst/s")
        rows.append(
            f"steady-state: {self.steady:.2f} inst/s "
            f"({self.efficiency * 100:.1f} % of prediction)"
        )
        return "\n".join(rows)


def run(
    n_instances: int = 3000,
    graph: Optional[StreamGraph] = None,
    platform: Optional[CellPlatform] = None,
    config: Optional[SimConfig] = None,
    window: Optional[int] = None,
    mip_time_limit: Optional[float] = 120.0,
    jobs: Optional[int] = None,
) -> Fig6Result:
    """Regenerate Fig. 6.  All knobs default to the paper's setup.

    ``window=None`` plots the cumulative achieved throughput (the paper's
    metric); an integer plots the instantaneous windowed rate instead.
    ``jobs`` is accepted for CLI uniformity with the Fig. 7/8 sweeps but
    ignored: this figure is a single (solve, simulate) point with nothing
    to fan out (the CLI prints a note when it is passed).
    """
    del jobs
    graph = graph or random_graph_1()
    platform = platform or CellPlatform.qs22()
    config = config or SimConfig.realistic()
    milp = solve_optimal_mapping(graph, platform, time_limit=mip_time_limit)
    sim = measure_throughput(milp.mapping, n_instances, config)
    curve = [
        (i, rate * 1e6) for i, rate in sim.throughput_curve(window=window)
    ]
    steady = sim.steady_state_throughput() * 1e6
    theoretical = milp.throughput * 1e6
    return Fig6Result(
        graph_name=graph.name,
        curve=curve,
        theoretical=theoretical,
        steady=steady,
        efficiency=steady / theoretical if theoretical else float("inf"),
        simulation=sim,
    )


def main(n_instances: int = 3000, jobs: Optional[int] = None) -> Fig6Result:
    """CLI entry: print the Fig. 6 table and plot (``jobs`` is a no-op)."""
    result = run(n_instances=n_instances, jobs=jobs)
    print(
        f"Figure 6 — ramp-up to steady state ({result.graph_name})"
        + kernel_note()
    )
    print(
        ascii_plot(
            result.points(),
            x_label="instances processed",
            y_label="throughput (inst/s)",
        )
    )
    print(result.table())
    return result
