"""Shared experiment utilities: strategies, measurement, reporting.

Every figure of §6 compares *measured* throughputs (on hardware there, on
the discrete-event simulator here), normalised to the measured throughput
of the everything-on-the-PPE mapping.  This module provides that protocol
plus CSV/ASCII reporting so each ``fig*`` module stays declarative.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ExperimentError
from ..graph.stream_graph import StreamGraph
from ..heuristics import critical_path_mapping, greedy_cpu, greedy_mem
from ..milp import PAPER_MIP_GAP, solve_optimal_mapping
from ..platform.cell import CellPlatform
from ..steady_state.mapping import Mapping
from ..simulator import SimConfig, SimulationResult, simulate

__all__ = [
    "STRATEGIES",
    "PAPER_STRATEGIES",
    "build_mapping",
    "measure_throughput",
    "measured_speedup",
    "MeasuredPoint",
    "ascii_plot",
    "to_csv",
]


def _milp_strategy(graph: StreamGraph, platform: CellPlatform) -> Mapping:
    # The paper's CPLEX setup: 5 % gap; solves "always below one minute".
    # The time limit is a safety net for the hardest high-CCR variants —
    # HiGHS then returns its best incumbent, exactly like a gap stop.
    return solve_optimal_mapping(
        graph, platform, mip_rel_gap=PAPER_MIP_GAP, time_limit=90.0
    ).mapping


#: All mapping strategies by name.  "milp" is the paper's contribution,
#: "greedy_cpu"/"greedy_mem" its §6.3 baselines, "critical_path" our
#: future-work heuristic.
STRATEGIES: Dict[str, Callable[[StreamGraph, CellPlatform], Mapping]] = {
    "milp": _milp_strategy,
    "greedy_cpu": greedy_cpu,
    "greedy_mem": greedy_mem,
    "critical_path": critical_path_mapping,
}

#: The three strategies shown in the paper's Fig. 7.
PAPER_STRATEGIES: Tuple[str, ...] = ("milp", "greedy_cpu", "greedy_mem")


def build_mapping(
    strategy: str, graph: StreamGraph, platform: CellPlatform
) -> Mapping:
    """Run one strategy by name."""
    try:
        builder = STRATEGIES[strategy]
    except KeyError:
        raise ExperimentError(
            f"unknown strategy {strategy!r}; pick from {sorted(STRATEGIES)}"
        ) from None
    return builder(graph, platform)


def measure_throughput(
    mapping: Mapping,
    n_instances: int,
    config: Optional[SimConfig] = None,
) -> SimulationResult:
    """Simulate and return the full result (steady-state rate inside)."""
    return simulate(mapping, n_instances, config or SimConfig.realistic())


def measured_speedup(
    mapping: Mapping,
    baseline: SimulationResult,
    n_instances: int,
    config: Optional[SimConfig] = None,
) -> Tuple[float, SimulationResult]:
    """Speed-up of ``mapping`` over a measured PPE-only baseline (§6.4)."""
    result = measure_throughput(mapping, n_instances, config)
    ratio = result.steady_state_throughput() / baseline.steady_state_throughput()
    return ratio, result


@dataclass(frozen=True)
class MeasuredPoint:
    """One data point of a figure: a labelled (x, y) with provenance."""

    series: str
    x: float
    y: float
    detail: str = ""


def ascii_plot(
    points: Sequence[MeasuredPoint],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Plain-text scatter plot of one or more series (terminal-friendly)."""
    if not points:
        return "(no data)"
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    y_lo = min(y_lo, 0.0) if y_lo > 0 else y_lo
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    series_names = list(dict.fromkeys(p.series for p in points))
    for p in points:
        col = int((p.x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((p.y - y_lo) / y_span * (height - 1))
        marker = markers[series_names.index(p.series) % len(markers)]
        grid[row][col] = marker
    lines = [f"{y_label} (top={y_hi:.3g}, bottom={y_lo:.3g})"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_lo:.3g} .. {x_hi:.3g}")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}"
        for i, name in enumerate(series_names)
    )
    lines.append(" " + legend)
    return "\n".join(lines)


def to_csv(points: Iterable[MeasuredPoint], header: Tuple[str, str, str] = ("series", "x", "y")) -> str:
    """Render measured points as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(header) + ["detail"])
    for p in points:
        writer.writerow([p.series, p.x, p.y, p.detail])
    return buffer.getvalue()
