"""Shared experiment utilities: strategies, measurement, reporting.

Every figure of §6 compares *measured* throughputs (on hardware there, on
the discrete-event simulator here), normalised to the measured throughput
of the everything-on-the-PPE mapping.  This module provides that protocol
plus CSV/ASCII reporting so each ``fig*`` module stays declarative.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from ..errors import ExperimentError
from .parallel import sweep_common
from ..graph.stream_graph import StreamGraph
from ..heuristics import (
    critical_path_mapping,
    genetic_algorithm,
    greedy_cpu,
    greedy_mem,
    simulated_annealing,
    tabu_search,
)
from ..milp import PAPER_MIP_GAP, solve_optimal_mapping
from ..platform.cell import CellPlatform
from ..steady_state.backend import resolve_backend
from ..steady_state.mapping import Mapping
from ..simulator import SimConfig, SimulationResult, simulate

__all__ = [
    "STRATEGIES",
    "PAPER_STRATEGIES",
    "SEEDED_STRATEGIES",
    "OBJECTIVE_STRATEGIES",
    "SweepRef",
    "validate_strategies",
    "build_mapping",
    "measure_throughput",
    "measured_speedup",
    "rate_of_point",
    "speedup_of_point",
    "MeasuredPoint",
    "ascii_plot",
    "kernel_note",
    "to_csv",
]


def kernel_note() -> str:
    """``" [kernel: <name>]"`` for sweep table headers.

    Names the resolved kernel backend the sweep's evaluation engine ran
    on (python | numpy | cython), so archived tables record which code
    path produced them.
    """
    return f" [kernel: {resolve_backend()}]"


def _milp_strategy(graph: StreamGraph, platform: CellPlatform) -> Mapping:
    # The paper's CPLEX setup: 5 % gap; solves "always below one minute".
    # The time limit is a safety net for the hardest high-CCR variants —
    # HiGHS then returns its best incumbent, exactly like a gap stop.
    return solve_optimal_mapping(
        graph, platform, mip_rel_gap=PAPER_MIP_GAP, time_limit=90.0
    ).mapping


#: All mapping strategies by name.  "milp" is the paper's contribution,
#: "greedy_cpu"/"greedy_mem" its §6.3 baselines, "critical_path" our
#: future-work heuristic, "simulated_annealing"/"tabu_search"/
#: "genetic_algorithm" the delta-evaluated metaheuristics (deterministic:
#: fixed default seeds).
STRATEGIES: Dict[str, Callable[[StreamGraph, CellPlatform], Mapping]] = {
    "milp": _milp_strategy,
    "greedy_cpu": greedy_cpu,
    "greedy_mem": greedy_mem,
    "critical_path": critical_path_mapping,
    "simulated_annealing": simulated_annealing,
    "tabu_search": tabu_search,
    "genetic_algorithm": genetic_algorithm,
}

#: The three strategies shown in the paper's Fig. 7.
PAPER_STRATEGIES: Tuple[str, ...] = ("milp", "greedy_cpu", "greedy_mem")

#: Strategies whose search is driven by a PRNG and accept a ``seed`` kwarg.
SEEDED_STRATEGIES: Tuple[str, ...] = (
    "simulated_annealing",
    "tabu_search",
    "genetic_algorithm",
)

#: Strategies that accept an ``objective`` kwarg (workload co-scheduling).
#: The rest optimise the shared period regardless of the requested
#: objective (still a valid — if objective-blind — co-scheduling baseline).
OBJECTIVE_STRATEGIES: Tuple[str, ...] = (
    "simulated_annealing",
    "tabu_search",
    "genetic_algorithm",
)


def validate_strategies(strategies: Iterable[str]) -> Tuple[str, ...]:
    """Fail fast on unregistered strategy names.

    Every sweep driver calls this before building its point specs, so a
    typo surfaces immediately as an :class:`ExperimentError` listing the
    registered :data:`STRATEGIES` — not as a bare ``KeyError`` from a
    worker process deep in the sweep.
    """
    strategies = tuple(strategies)
    if not strategies:
        raise ExperimentError(
            f"no strategies given; pick from {', '.join(sorted(STRATEGIES))}"
        )
    unknown = sorted(set(strategies) - set(STRATEGIES))
    if unknown:
        raise ExperimentError(
            f"unknown strategies {', '.join(repr(s) for s in unknown)}; "
            f"pick from {', '.join(sorted(STRATEGIES))}"
        )
    duplicates = sorted(
        {s for s in strategies if strategies.count(s) > 1}
    )
    if duplicates:
        raise ExperimentError(
            f"duplicate strategies {', '.join(repr(s) for s in duplicates)}; "
            "each sweep point would run twice"
        )
    return strategies


def build_mapping(
    strategy: str,
    graph: StreamGraph,
    platform: CellPlatform,
    seed: Optional[int] = None,
    objective: Optional[str] = None,
) -> Mapping:
    """Run one strategy by name.

    ``seed`` parameterises the randomized strategies (see
    :data:`SEEDED_STRATEGIES`); the deterministic ones ignore it.
    ``objective`` selects the scheduling objective for the
    objective-aware strategies (see :data:`OBJECTIVE_STRATEGIES`); the
    others always optimise the shared period.
    """
    try:
        builder = STRATEGIES[strategy]
    except KeyError:
        raise ExperimentError(
            f"unknown strategy {strategy!r}; pick from {sorted(STRATEGIES)}"
        ) from None
    kwargs = {}
    if seed is not None and strategy in SEEDED_STRATEGIES:
        kwargs["seed"] = seed
    if objective not in (None, "period") and strategy in OBJECTIVE_STRATEGIES:
        kwargs["objective"] = objective
    return builder(graph, platform, **kwargs)


def measure_throughput(
    mapping: Mapping,
    n_instances: int,
    config: Optional[SimConfig] = None,
) -> SimulationResult:
    """Simulate and return the full result (steady-state rate inside)."""
    return simulate(mapping, n_instances, config or SimConfig.realistic())


def measured_speedup(
    mapping: Mapping,
    baseline: SimulationResult,
    n_instances: int,
    config: Optional[SimConfig] = None,
) -> Tuple[float, SimulationResult]:
    """Speed-up of ``mapping`` over a measured PPE-only baseline (§6.4)."""
    result = measure_throughput(mapping, n_instances, config)
    ratio = result.steady_state_throughput() / baseline.steady_state_throughput()
    return ratio, result


# ---------------------------------------------------------------------- #
# Sweep-point workers.  Top-level (picklable) so `parallel.run_sweep` can
# fan them across multiprocessing workers; each spec is a self-contained
# (graph, platform, strategy, n_instances, config[, seed]) tuple, so the
# result is independent of worker count and scheduling order.  The
# optional per-point seed (see `parallel.point_seed`) parameterises the
# randomized strategies.
#
# Heavy spec fields (graphs, platforms, sim configs) may be passed as
# `SweepRef` keys into the sweep's `common` mapping instead of inline
# objects: `run_sweep` ships the mapping once per worker through the pool
# initializer, so a 50-task graph reused by 30 points is pickled once,
# not 30 times.  `_resolve` makes both forms equivalent, so serial and
# parallel sweeps — with or without a context — return identical results.


@dataclass(frozen=True)
class SweepRef:
    """A reference to an entry of the sweep's shared ``common`` mapping."""

    key: str


def _resolve(value):
    """``value`` itself, or the shared object a :class:`SweepRef` names."""
    if not isinstance(value, SweepRef):
        return value
    common = sweep_common()
    if common is None or value.key not in common:
        raise ExperimentError(
            f"sweep spec references common key {value.key!r} but the "
            "sweep context does not provide it; pass `common=` to "
            "run_sweep"
        )
    return common[value.key]


def _spec_mapping(spec) -> Mapping:
    graph, platform, strategy = (
        _resolve(spec[0]), _resolve(spec[1]), spec[2],
    )
    seed = spec[5] if len(spec) > 5 else None
    if strategy == "ppe":
        return Mapping.all_on_ppe(graph, platform)
    return build_mapping(strategy, graph, platform, seed=seed)


def rate_of_point(spec) -> float:
    """Measured steady-state rate of one sweep point (``"ppe"`` = baseline)."""
    n_instances, config = spec[3], _resolve(spec[4])
    mapping = _spec_mapping(spec)
    return measure_throughput(mapping, n_instances, config).steady_state_throughput()


def speedup_of_point(spec) -> Tuple[float, int]:
    """Speed-up of one sweep point over its own measured PPE-only baseline.

    Returns ``(speedup, n_tasks_on_spes)``; used where the baseline is
    per-point (e.g. Fig. 8, where memory I/O scales with the CCR).
    """
    graph, platform = _resolve(spec[0]), _resolve(spec[1])
    n_instances, config = spec[3], _resolve(spec[4])
    baseline = measure_throughput(
        Mapping.all_on_ppe(graph, platform), n_instances, config
    )
    mapping = _spec_mapping(spec)
    result = measure_throughput(mapping, n_instances, config)
    ratio = result.steady_state_throughput() / baseline.steady_state_throughput()
    return ratio, mapping.n_tasks_on_spes()


@dataclass(frozen=True)
class MeasuredPoint:
    """One data point of a figure: a labelled (x, y) with provenance."""

    series: str
    x: float
    y: float
    detail: str = ""


def ascii_plot(
    points: Sequence[MeasuredPoint],
    width: int = 64,
    height: int = 16,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Plain-text scatter plot of one or more series (terminal-friendly)."""
    if not points:
        return "(no data)"
    xs = [p.x for p in points]
    ys = [p.y for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    y_lo = min(y_lo, 0.0) if y_lo > 0 else y_lo
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "ox+*#@%&"
    series_names = list(dict.fromkeys(p.series for p in points))
    for p in points:
        col = int((p.x - x_lo) / x_span * (width - 1))
        row = height - 1 - int((p.y - y_lo) / y_span * (height - 1))
        marker = markers[series_names.index(p.series) % len(markers)]
        grid[row][col] = marker
    lines = [f"{y_label} (top={y_hi:.3g}, bottom={y_lo:.3g})"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_lo:.3g} .. {x_hi:.3g}")
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}"
        for i, name in enumerate(series_names)
    )
    lines.append(" " + legend)
    return "\n".join(lines)


def to_csv(
    points: Iterable[MeasuredPoint],
    header: Tuple[str, str, str] = ("series", "x", "y"),
) -> str:
    """Render measured points as CSV text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(list(header) + ["detail"])
    for p in points:
        writer.writerow([p.series, p.x, p.y, p.detail])
    return buffer.getvalue()
