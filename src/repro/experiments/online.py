"""Online scheduling experiment: acceptance and period vs load and budget.

The runtime-layer experiment the paper never ran (its scheduler is
offline): seeded scenarios of arriving/departing applications with SPE
failure injection (:class:`~repro.runtime.scenario.ScenarioGenerator`)
are played through :class:`~repro.runtime.scheduler.OnlineScheduler`
over a grid of **offered load** (expected concurrently-resident
applications) × **migration budget** (max task migrations per
re-optimisation pass).  Each point reports the admission acceptance
rate, the mean shared period over the non-idle states, the migration
count and the number of applications shed after failures — the axes of
the admission-control/reconfiguration-cost trade.

Points are independent and self-contained, so ``jobs`` fans them across
worker processes through :func:`repro.experiments.parallel.run_sweep`
with deterministic, order-preserving results.  The scenario seed of a
point is derived from ``(seed, load, n_events)`` only — *not* from the
budget — so every budget column of a load row replays the identical
event timeline, isolating the budget's effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import ExperimentError
from ..platform.cell import CellPlatform
from ..runtime.scenario import ScenarioGenerator
from ..runtime.scheduler import OnlineScheduler
from ..steady_state.objective import OBJECTIVES
from .parallel import point_seed, run_sweep

__all__ = [
    "DEFAULT_LOADS",
    "DEFAULT_BUDGETS",
    "DEFAULT_EVENTS",
    "OnlinePoint",
    "OnlineResult",
    "online_point",
    "run",
    "main",
]

#: Offered loads swept by default: under- to over-subscribed.
DEFAULT_LOADS: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)

#: Migration budgets swept by default: frozen, cautious, generous.
DEFAULT_BUDGETS: Tuple[int, ...] = (0, 2, 6)

#: Timeline length per scenario (≥20 so every run sees failures).
DEFAULT_EVENTS: int = 24


@dataclass(frozen=True)
class OnlinePoint:
    """One (load, migration budget) point of the online sweep."""

    load: float
    budget: int
    n_events: int
    arrivals: int
    accepted: int
    acceptance_rate: float
    mean_period: float
    migrations: int
    dropped: int
    all_feasible: bool


@dataclass(frozen=True)
class OnlineResult:
    """The acceptance/period table of one online sweep."""

    objective: str
    n_events: int
    points: List[OnlinePoint]

    def table(self) -> str:
        rows = [
            "Online scheduling — acceptance and mean period vs load and "
            f"migration budget [objective: {self.objective}, "
            f"{self.n_events} events/scenario]",
            "    load  budget  accepted    rate  mean period  "
            "migrations  dropped",
        ]
        for p in sorted(self.points, key=lambda p: (p.load, p.budget)):
            flag = "" if p.all_feasible else "  !! infeasible state"
            rows.append(
                f"  {p.load:6.2f}  {p.budget:6d}  "
                f"{p.accepted:3d}/{p.arrivals:<4d}  "
                f"{100.0 * p.acceptance_rate:5.1f}%  {p.mean_period:11.2f}  "
                f"{p.migrations:10d}  {p.dropped:7d}{flag}"
            )
        return "\n".join(rows)


# ---------------------------------------------------------------------- #
# Sweep worker: top-level so run_sweep can pickle it by reference; the
# spec carries everything the point needs (scenario parameters, not the
# scenario itself — graphs are rebuilt inside the worker), so results
# are independent of worker count and scheduling order.


def online_point(spec) -> OnlinePoint:
    """Generate and play one (platform, load, budget, ...) scenario."""
    platform, load, budget, n_events, objective, scenario_seed = spec
    generator = ScenarioGenerator(platform, seed=scenario_seed, load=load)
    events = generator.generate(n_events)
    scheduler = OnlineScheduler(
        platform, objective=objective, migration_budget=budget
    )
    report = scheduler.run(events)
    return OnlinePoint(
        load=load,
        budget=budget,
        n_events=report.n_events,
        arrivals=report.n_arrivals,
        accepted=report.n_accepted,
        acceptance_rate=report.acceptance_rate,
        mean_period=report.mean_period,
        migrations=report.total_migrations,
        dropped=len(report.dropped_apps),
        all_feasible=report.all_feasible,
    )


def run(
    loads: Sequence[float] = DEFAULT_LOADS,
    budgets: Sequence[int] = DEFAULT_BUDGETS,
    n_events: int = DEFAULT_EVENTS,
    objective: str = "period",
    base_platform: Optional[CellPlatform] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
) -> OnlineResult:
    """Sweep scenarios over offered loads and migration budgets."""
    if not loads:
        raise ExperimentError("no loads given; want positive floats")
    if any(load <= 0 for load in loads):
        raise ExperimentError(f"loads must be positive (got {tuple(loads)!r})")
    if not budgets:
        raise ExperimentError("no budgets given; want non-negative integers")
    if any(budget < 0 for budget in budgets):
        raise ExperimentError(
            f"budgets must be non-negative (got {tuple(budgets)!r})"
        )
    if n_events < 2:
        raise ExperimentError(
            f"n_events must be at least 2 (got {n_events!r})"
        )
    if objective not in OBJECTIVES:
        raise ExperimentError(
            f"unknown objective {objective!r}; "
            f"pick from {', '.join(OBJECTIVES)}"
        )
    platform = base_platform or CellPlatform.qs22()

    specs = []
    for load in loads:
        # Budget-independent scenario seed: every budget column of this
        # load row replays the identical event timeline.
        scenario_seed = point_seed("online", seed, load, n_events)
        for budget in budgets:
            specs.append(
                (platform, load, budget, n_events, objective, scenario_seed)
            )
    points = run_sweep(online_point, specs, jobs=jobs)
    return OnlineResult(
        objective=objective, n_events=n_events, points=list(points)
    )


def main(
    loads: Optional[Sequence[float]] = None,
    budgets: Optional[Sequence[int]] = None,
    n_events: Optional[int] = None,
    objective: str = "period",
    seed: int = 0,
    jobs: Optional[int] = None,
) -> OnlineResult:
    """CLI entry: print the deterministic acceptance/period table."""
    # `is not None` (not falsiness): explicit-but-invalid values like
    # n_events=0 or empty loads must reach run()'s validation, not be
    # silently replaced by the defaults.
    result = run(
        loads=tuple(loads) if loads is not None else DEFAULT_LOADS,
        budgets=tuple(budgets) if budgets is not None else DEFAULT_BUDGETS,
        n_events=n_events if n_events is not None else DEFAULT_EVENTS,
        objective=objective,
        seed=seed,
        jobs=jobs,
    )
    print(result.table())
    return result
