"""Online scheduling experiment: acceptance and period vs load and budget.

The runtime-layer experiment the paper never ran (its scheduler is
offline): seeded scenarios of arriving/departing applications with SPE
failure injection (:class:`~repro.runtime.scenario.ScenarioGenerator`)
are played through :class:`~repro.runtime.scheduler.OnlineScheduler`
over a grid of **offered load** (expected concurrently-resident
applications) × **migration budget** (max task migrations per
re-optimisation pass).  Each point reports the admission acceptance
rate, the mean shared period over the non-idle states, the migration
count and the number of applications shed after failures — the axes of
the admission-control/reconfiguration-cost trade.

Points are independent and self-contained, so ``jobs`` fans them across
worker processes through :func:`repro.experiments.parallel.run_sweep`
with deterministic, order-preserving results.  The scenario seed of a
point is derived from ``(seed, load, n_events)`` only — *not* from the
budget — so every budget column of a load row replays the identical
event timeline, isolating the budget's effect.

Fault injection (``n_failures``, ``mean_downtime``) threads through to
the generator, and ``timeline`` replays an archived JSON timeline
(:func:`repro.runtime.faults.save_timeline`) instead of generating one:
replay rows carry ``load=None`` and every budget column plays the
identical saved events.  Each point also reports the robustness metrics
(period p50/p99, QoS violation rate, degraded fraction, shed and retry
counts) of its :class:`~repro.runtime.report.RuntimeReport`.

``checkpoint_every=N`` runs every point through a
:class:`~repro.runtime.checkpoint.DurableScheduler`: per-point journal
and checkpoint files land in ``checkpoint_dir`` (named after the point,
e.g. ``load2-budget4.journal.jsonl``), a checkpoint every N events —
so an interrupted sweep point can be recovered and replayed
(:meth:`~repro.runtime.checkpoint.DurableScheduler.recover`) to the
exact report the uninterrupted point produces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentError
from ..obs import metrics as _metrics
from ..platform.cell import CellPlatform
from ..runtime.checkpoint import DurableScheduler
from ..runtime.faults import timeline_dumps, timeline_loads
from ..runtime.scenario import ScenarioGenerator
from ..runtime.scheduler import SHED_POLICIES, OnlineScheduler
from ..steady_state.objective import OBJECTIVES
from .common import kernel_note
from .parallel import point_seed, run_sweep, run_sweep_telemetry

__all__ = [
    "DEFAULT_LOADS",
    "DEFAULT_BUDGETS",
    "DEFAULT_EVENTS",
    "OnlinePoint",
    "OnlineResult",
    "online_point",
    "run",
    "main",
]

#: Offered loads swept by default: under- to over-subscribed.
DEFAULT_LOADS: Tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)

#: Migration budgets swept by default: frozen, cautious, generous.
DEFAULT_BUDGETS: Tuple[int, ...] = (0, 2, 6)

#: Timeline length per scenario (≥20 so every run sees failures).
DEFAULT_EVENTS: int = 24


@dataclass(frozen=True)
class OnlinePoint:
    """One (load, migration budget) point of the online sweep.

    ``load`` is ``None`` for timeline-replay points (the events come
    from the archive, not from an offered-load scenario).
    """

    load: Optional[float]
    budget: int
    n_events: int
    arrivals: int
    accepted: int
    acceptance_rate: float
    mean_period: float
    migrations: int
    dropped: int
    all_feasible: bool
    period_p50: float = 0.0
    period_p99: float = 0.0
    violation_rate: float = 0.0
    degraded_fraction: float = 0.0
    availability: float = 1.0
    retries: int = 0
    #: Telemetry sidecars, filled only when the sweep runs with a
    #: metrics registry active.  ``compare=False``: wall-clock rates
    #: never participate in point equality, so serial == parallel (and
    #: metrics-on == metrics-off) result comparisons stay exact.
    candidates_per_sec: Optional[float] = field(default=None, compare=False)
    mean_admission_latency: Optional[float] = field(
        default=None, compare=False
    )


@dataclass(frozen=True)
class OnlineResult:
    """The acceptance/period table of one online sweep.

    ``metrics`` (a merged :meth:`~repro.obs.metrics.MetricsRegistry.
    snapshot` across every sweep worker) and ``trace_events`` (Chrome
    trace events from every worker) ride along only when the sweep ran
    with telemetry; both are ``compare=False`` so result equality stays
    a statement about scheduling decisions.
    """

    objective: str
    n_events: int
    points: List[OnlinePoint]
    metrics: Optional[Dict] = field(default=None, compare=False)
    trace_events: Optional[List[Dict]] = field(default=None, compare=False)

    def table(self) -> str:
        telemetry = any(p.candidates_per_sec is not None for p in self.points)
        header = (
            "    load  budget  accepted    rate  mean period  "
            "migrations  dropped      p99  viol  degr"
        )
        if telemetry:
            header += "    cand/s  adm ms"
        rows = [
            "Online scheduling — acceptance and mean period vs load and "
            f"migration budget [objective: {self.objective}, "
            f"{self.n_events} events/scenario]" + kernel_note(),
            header,
        ]
        ordered = sorted(
            self.points,
            key=lambda p: (p.load is None, p.load or 0.0, p.budget),
        )
        for p in ordered:
            flag = "" if p.all_feasible else "  !! infeasible state"
            load = "replay" if p.load is None else f"{p.load:6.2f}"
            row = (
                f"  {load:>6}  {p.budget:6d}  "
                f"{p.accepted:3d}/{p.arrivals:<4d}  "
                f"{100.0 * p.acceptance_rate:5.1f}%  {p.mean_period:11.2f}  "
                f"{p.migrations:10d}  {p.dropped:7d}  {p.period_p99:7.1f}  "
                f"{100.0 * p.violation_rate:3.0f}%  "
                f"{100.0 * p.degraded_fraction:3.0f}%"
            )
            if telemetry:
                row += (
                    f"  {p.candidates_per_sec or 0.0:8.0f}"
                    f"  {1e3 * (p.mean_admission_latency or 0.0):6.2f}"
                )
            rows.append(row + flag)
        return "\n".join(rows)


# ---------------------------------------------------------------------- #
# Sweep worker: top-level so run_sweep can pickle it by reference; the
# spec carries everything the point needs (scenario parameters, not the
# scenario itself — graphs are rebuilt inside the worker), so results
# are independent of worker count and scheduling order.


def online_point(spec) -> OnlinePoint:
    """Generate (or replay) and play one online-scheduling scenario.

    ``spec`` is a plain dict (picklable by value): scenario parameters
    or an archived-timeline JSON text — never live graphs, so results
    are independent of worker count and scheduling order.
    """
    platform = spec["platform"]
    load = spec["load"]
    budget = spec["budget"]
    if spec.get("timeline") is not None:
        events = timeline_loads(spec["timeline"])
    else:
        generator = ScenarioGenerator(
            platform,
            seed=spec["seed"],
            load=load,
            n_failures=spec["n_failures"],
            mean_downtime=spec["mean_downtime"],
        )
        events = generator.generate(spec["n_events"])
    scheduler = OnlineScheduler(
        platform,
        objective=spec["objective"],
        migration_budget=budget,
        shed_policy=spec.get("shed_policy", "lowest-weight"),
        retry_limit=spec.get("retry_limit", 0),
        retry_backoff=spec.get("retry_backoff", 8.0),
        brownout_threshold=spec.get("brownout_threshold", 0.0),
    )
    runner = scheduler
    checkpoint_every = spec.get("checkpoint_every", 0)
    if checkpoint_every:
        label = (
            "replay" if load is None else f"load{load:g}".replace(".", "p")
        ) + f"-budget{budget}"
        stem = Path(spec["checkpoint_dir"]) / label
        runner = DurableScheduler(
            scheduler,
            str(stem) + ".journal.jsonl",
            checkpoint_path=str(stem) + ".checkpoint.json",
            checkpoint_every=checkpoint_every,
        )
    # Telemetry sidecars (None unless a metrics registry is active —
    # e.g. under run_sweep_telemetry or REPRO_METRICS=1).  Counter
    # deltas around the run make the rate per-point even when one
    # process-global registry spans many specs.
    reg = _metrics.REGISTRY
    candidates_per_sec = None
    mean_admission_latency = None
    if reg is not None:
        scored_before = (
            reg.counters.get("moves_scored", 0)
            + reg.counters.get("swaps_scored", 0)
            + reg.counters.get("bulk_changes", 0)
        )
        t0 = perf_counter()
    if runner is scheduler:
        report = scheduler.run(events)
    else:
        with runner:
            report = runner.run(events)
    if reg is not None:
        wall = perf_counter() - t0
        scored = (
            reg.counters.get("moves_scored", 0)
            + reg.counters.get("swaps_scored", 0)
            + reg.counters.get("bulk_changes", 0)
        ) - scored_before
        candidates_per_sec = scored / wall if wall > 0.0 else 0.0
        mean_admission_latency = report.mean_admission_latency
    return OnlinePoint(
        load=load,
        budget=budget,
        n_events=report.n_events,
        arrivals=report.n_arrivals,
        accepted=report.n_accepted,
        acceptance_rate=report.acceptance_rate,
        mean_period=report.mean_period,
        migrations=report.total_migrations,
        dropped=len(report.dropped_apps),
        all_feasible=report.all_feasible,
        period_p50=report.period_p50,
        period_p99=report.period_p99,
        violation_rate=report.qos_violation_rate,
        degraded_fraction=report.degraded_fraction,
        availability=report.availability,
        retries=report.n_retries,
        candidates_per_sec=candidates_per_sec,
        mean_admission_latency=mean_admission_latency,
    )


def run(
    loads: Sequence[float] = DEFAULT_LOADS,
    budgets: Sequence[int] = DEFAULT_BUDGETS,
    n_events: int = DEFAULT_EVENTS,
    objective: str = "period",
    base_platform: Optional[CellPlatform] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
    n_failures: int = 1,
    mean_downtime: Optional[float] = None,
    timeline: Optional[Sequence] = None,
    shed_policy: str = "lowest-weight",
    retry_limit: int = 0,
    retry_backoff: float = 8.0,
    brownout_threshold: float = 0.0,
    metrics: bool = False,
    trace: bool = False,
    checkpoint_every: int = 0,
    checkpoint_dir: Optional[str] = None,
) -> OnlineResult:
    """Sweep scenarios over offered loads and migration budgets.

    With ``timeline`` (a validated event list, e.g. from
    :func:`repro.runtime.faults.load_timeline`), the saved events replace
    scenario generation: one replay point per budget, ``load=None``.

    ``metrics``/``trace`` run the sweep through
    :func:`repro.experiments.parallel.run_sweep_telemetry`: every point
    gets a fresh registry (and tracer), the result carries the merged
    cross-worker snapshot and concatenated trace events, and the table
    gains scored-candidates/sec and mean-admission-latency columns.
    Telemetry is passive — the scheduling decisions, and therefore the
    comparable fields of every point, are identical with it on or off.

    ``checkpoint_every=N`` (with ``checkpoint_dir``) makes every point
    durable: a per-point journal plus a checkpoint every N events (see
    the module docstring).  Durability is write-only bookkeeping — it
    changes no scheduling decision, so results are identical with it on
    or off.
    """
    if timeline is None:
        if not loads:
            raise ExperimentError("no loads given; want positive floats")
        if any(load <= 0 for load in loads):
            raise ExperimentError(
                f"loads must be positive (got {tuple(loads)!r})"
            )
        if n_events < 2:
            raise ExperimentError(
                f"n_events must be at least 2 (got {n_events!r})"
            )
        if n_failures < 0:
            raise ExperimentError(
                f"n_failures must be non-negative (got {n_failures!r})"
            )
        if mean_downtime is not None and mean_downtime <= 0:
            raise ExperimentError(
                f"mean_downtime must be positive (got {mean_downtime!r})"
            )
    if not budgets:
        raise ExperimentError("no budgets given; want non-negative integers")
    if any(budget < 0 for budget in budgets):
        raise ExperimentError(
            f"budgets must be non-negative (got {tuple(budgets)!r})"
        )
    if objective not in OBJECTIVES:
        raise ExperimentError(
            f"unknown objective {objective!r}; "
            f"pick from {', '.join(OBJECTIVES)}"
        )
    if shed_policy not in SHED_POLICIES:
        raise ExperimentError(
            f"unknown shed_policy {shed_policy!r}; "
            f"pick from {', '.join(SHED_POLICIES)}"
        )
    if checkpoint_every < 0:
        raise ExperimentError(
            f"checkpoint_every must be non-negative (got {checkpoint_every!r})"
        )
    if checkpoint_every and checkpoint_dir is None:
        raise ExperimentError(
            "checkpoint_every needs checkpoint_dir (where the per-point "
            "journal/checkpoint files go)"
        )
    if checkpoint_dir is not None:
        # Created up front: sweep workers race otherwise.
        Path(checkpoint_dir).mkdir(parents=True, exist_ok=True)
    platform = base_platform or CellPlatform.qs22()
    knobs = dict(
        objective=objective,
        shed_policy=shed_policy,
        retry_limit=retry_limit,
        retry_backoff=retry_backoff,
        brownout_threshold=brownout_threshold,
    )
    if checkpoint_every:
        knobs.update(
            checkpoint_every=int(checkpoint_every),
            checkpoint_dir=str(checkpoint_dir),
        )

    specs = []
    if timeline is not None:
        # Replay: serialize once, parse in each worker — the spec stays
        # a plain by-value payload, never a shared live graph.
        text = timeline_dumps(timeline, indent=None)
        for budget in budgets:
            specs.append(
                dict(platform=platform, load=None, budget=budget,
                     timeline=text, **knobs)
            )
    else:
        for load in loads:
            # Budget-independent scenario seed: every budget column of
            # this load row replays the identical event timeline.
            scenario_seed = point_seed("online", seed, load, n_events)
            for budget in budgets:
                specs.append(
                    dict(platform=platform, load=load, budget=budget,
                         n_events=n_events, seed=scenario_seed,
                         n_failures=n_failures, mean_downtime=mean_downtime,
                         **knobs)
                )
    if metrics or trace:
        points, merged, trace_events = run_sweep_telemetry(
            online_point, specs, jobs=jobs, trace=trace
        )
        return OnlineResult(
            objective=objective,
            n_events=len(timeline) if timeline is not None else n_events,
            points=list(points),
            metrics=merged.snapshot() if metrics else None,
            trace_events=trace_events if trace else None,
        )
    points = run_sweep(online_point, specs, jobs=jobs)
    return OnlineResult(
        objective=objective,
        n_events=len(timeline) if timeline is not None else n_events,
        points=list(points),
    )


def main(
    loads: Optional[Sequence[float]] = None,
    budgets: Optional[Sequence[int]] = None,
    n_events: Optional[int] = None,
    objective: str = "period",
    seed: Optional[int] = None,
    jobs: Optional[int] = None,
    n_failures: Optional[int] = None,
    mean_downtime: Optional[float] = None,
    timeline: Optional[Sequence] = None,
    metrics: Optional[str] = None,
    trace: Optional[str] = None,
    checkpoint_every: Optional[int] = None,
    checkpoint_dir: Optional[str] = None,
) -> OnlineResult:
    """CLI entry: print the deterministic acceptance/period table.

    ``timeline`` (a loaded event list) contradicts every
    scenario-generation parameter: combining it with explicit loads,
    events, seed or failure knobs raises :class:`UsageError` rather than
    silently ignoring one of the two.

    ``metrics``/``trace`` are output paths: the sweep runs with
    telemetry and writes the merged cross-worker metrics snapshot
    (JSON) and/or the Chrome trace-event file (loadable in Perfetto or
    ``chrome://tracing``).
    """
    if timeline is not None:
        from ..errors import UsageError

        clashes = [
            flag
            for flag, value in (
                ("--loads", loads),
                ("--events", n_events),
                ("--seed", seed),
                ("--failures", n_failures),
                ("--mean-downtime", mean_downtime),
            )
            if value is not None
        ]
        if clashes:
            raise UsageError(
                f"--timeline replays saved events; {', '.join(clashes)} "
                "would be ignored — drop one side"
            )
    # `is not None` (not falsiness): explicit-but-invalid values like
    # n_events=0 or empty loads must reach run()'s validation, not be
    # silently replaced by the defaults.
    result = run(
        loads=tuple(loads) if loads is not None else DEFAULT_LOADS,
        budgets=tuple(budgets) if budgets is not None else DEFAULT_BUDGETS,
        n_events=n_events if n_events is not None else DEFAULT_EVENTS,
        objective=objective,
        seed=seed if seed is not None else 0,
        jobs=jobs,
        n_failures=n_failures if n_failures is not None else 1,
        mean_downtime=mean_downtime,
        timeline=timeline,
        metrics=metrics is not None,
        trace=trace is not None,
        checkpoint_every=checkpoint_every if checkpoint_every is not None else 0,
        checkpoint_dir=checkpoint_dir,
    )
    print(result.table())
    if checkpoint_every:
        print(
            f"per-point journals and checkpoints "
            f"(every {checkpoint_every} events) written to {checkpoint_dir}"
        )
    if metrics is not None:
        Path(metrics).write_text(
            json.dumps(result.metrics, indent=2, sort_keys=True) + "\n"
        )
        print(f"merged metrics written to {metrics}")
    if trace is not None:
        Path(trace).write_text(
            json.dumps(
                {
                    "traceEvents": result.trace_events,
                    "displayTimeUnit": "ms",
                }
            )
            + "\n"
        )
        print(f"trace written to {trace} (load in Perfetto)")
    return result
