"""Co-scheduling experiment: N concurrent applications vs SPE count.

This is the workload-layer experiment the paper never ran (it maps one
application per Cell): a mix of real applications (``repro.apps``) and
generator graphs is compiled into one
:class:`~repro.graph.workload.Workload` composite (namespaced task ids,
no cross-application edges — see :mod:`repro.graph.workload` for the
composite-graph semantics) and mapped onto a QS22 whose SPE count
sweeps, once per requested strategy.

For every ``(n_spe, strategy)`` point the driver reports the analytic
shared-resource period of the composite mapping, each application's own
period (``PeriodAnalysis.app_periods`` — its resource occupation alone,
the stretch numerator), and the value of the requested objective
(``period`` / ``weighted`` / ``max_stretch``; the objective-aware
metaheuristics optimise it directly, the others co-schedule
objective-blind and are evaluated under it).  Points are independent and
self-contained, so ``jobs`` fans them across worker processes through
:func:`repro.experiments.parallel.run_sweep` with deterministic,
order-preserving results; seeded strategies draw stable per-point seeds
from :func:`repro.experiments.parallel.point_seed`, making the whole
table reproducible run to run and worker count to worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..apps import audio_encoder, crypto_pipeline, video_pipeline
from ..errors import ExperimentError, UsageError
from ..generator.paper_graphs import (
    random_graph_1,
    random_graph_2,
    random_graph_3,
)
from ..graph.stream_graph import StreamGraph
from ..graph.workload import CompositeGraph, Workload
from ..platform.cell import CellPlatform
from ..steady_state.objective import OBJECTIVES, make_objective
from ..steady_state.throughput import analyze
from .common import build_mapping, kernel_note, validate_strategies
from .parallel import point_seed, run_sweep

__all__ = [
    "APP_BUILDERS",
    "DEFAULT_APPS",
    "DEFAULT_SPE_COUNTS",
    "CoschedulePoint",
    "CoscheduleResult",
    "build_workload",
    "run",
    "main",
]

#: Applications available to ``--apps``: the three realistic workloads
#: plus the paper's three generator graphs.
APP_BUILDERS: Dict[str, Callable[[], StreamGraph]] = {
    "audio_encoder": audio_encoder,
    "video_pipeline": video_pipeline,
    "crypto_pipeline": crypto_pipeline,
    "graph1": random_graph_1,
    "graph2": random_graph_2,
    "graph3": random_graph_3,
}

DEFAULT_APPS: Tuple[str, ...] = (
    "audio_encoder",
    "video_pipeline",
    "crypto_pipeline",
)

DEFAULT_SPE_COUNTS: Tuple[int, ...] = tuple(range(0, 9))


def build_workload(app_specs: Sequence[str]) -> Workload:
    """Build a workload from app specs, each ``name`` or ``name=weight``.

    Names must be registered in :data:`APP_BUILDERS`; repeating a name
    raises a :class:`~repro.errors.UsageError` up front (duplicate streams
    would need distinct identities) instead of surfacing later as a
    confusing composite/namespace error.
    """
    if not app_specs:
        raise ExperimentError(
            f"no apps given; pick from {', '.join(sorted(APP_BUILDERS))}"
        )
    workload = Workload("coschedule")
    for spec in app_specs:
        name, _, weight_text = spec.partition("=")
        name = name.strip()
        if name not in APP_BUILDERS:
            raise ExperimentError(
                f"unknown app {name!r}; "
                f"pick from {', '.join(sorted(APP_BUILDERS))}"
            )
        if name in workload:
            raise UsageError(
                f"app {name!r} given twice; each application may appear "
                "only once (give it a weight with name=weight instead)"
            )
        try:
            weight = float(weight_text) if weight_text else 1.0
        except ValueError:
            raise ExperimentError(
                f"bad weight in app spec {spec!r} (want name or name=weight)"
            ) from None
        workload.add_app(name, APP_BUILDERS[name](), weight=weight)
    return workload


@dataclass(frozen=True)
class CoschedulePoint:
    """One (strategy, SPE count) point of the co-scheduling sweep."""

    strategy: str
    n_spe: int
    period: float
    app_periods: Dict[str, float]
    value: float
    feasible: bool
    n_tasks_on_spes: int


@dataclass(frozen=True)
class CoscheduleResult:
    """Per-app period table of one co-scheduling sweep."""

    app_names: Tuple[str, ...]
    objective: str
    points: List[CoschedulePoint]

    def table(self) -> str:
        rows = [
            "Co-schedule — shared and per-app periods (µs) vs #SPEs "
            f"[objective: {self.objective}]" + kernel_note()
        ]
        header = (
            "strategy              nSPE    period  "
            + "  ".join(f"{name:>16}" for name in self.app_names)
            + f"  {self.objective:>12}"
        )
        rows.append(header)
        for p in sorted(self.points, key=lambda p: (p.strategy, p.n_spe)):
            cells = "  ".join(
                f"{p.app_periods[name]:16.2f}" for name in self.app_names
            )
            flag = "" if p.feasible else "  !! infeasible"
            rows.append(
                f"{p.strategy:<20}  {p.n_spe:4d}  {p.period:8.2f}  "
                f"{cells}  {p.value:12.2f}{flag}"
            )
        return "\n".join(rows)


# ---------------------------------------------------------------------- #
# Sweep worker: top-level so run_sweep can pickle it by reference; each
# spec carries everything the point needs, so results are independent of
# worker count and scheduling order.


def coschedule_point(spec) -> Tuple[float, Dict[str, float], float, bool, int]:
    """Evaluate one (composite, platform, strategy, objective, seed) spec."""
    composite, platform, strategy, objective, seed = spec
    mapping = build_mapping(
        strategy, composite, platform, seed=seed, objective=objective
    )
    analysis = analyze(mapping)
    obj = make_objective(objective, composite)
    value = obj.value(analysis.period, analysis.app_periods)
    return (
        analysis.period,
        dict(analysis.app_periods),
        value,
        analysis.feasible,
        mapping.n_tasks_on_spes(),
    )


def run(
    apps: Sequence[str] = DEFAULT_APPS,
    spe_counts: Sequence[int] = DEFAULT_SPE_COUNTS,
    strategies: Sequence[str] = ("genetic_algorithm",),
    objective: str = "period",
    base_platform: Optional[CellPlatform] = None,
    jobs: Optional[int] = None,
) -> CoscheduleResult:
    """Sweep the co-scheduled workload over SPE counts and strategies."""
    strategies = validate_strategies(strategies)  # fail fast, not in a worker
    if objective not in OBJECTIVES:
        raise ExperimentError(
            f"unknown objective {objective!r}; "
            f"pick from {', '.join(OBJECTIVES)}"
        )
    workload = build_workload(apps)
    composite: CompositeGraph = workload.compile()
    base_platform = base_platform or CellPlatform.qs22()

    specs = []
    keys: List[Tuple[str, int]] = []
    for strategy in strategies:
        for n_spe in spe_counts:
            platform = base_platform.with_spes(n_spe)
            seed = point_seed(
                "coschedule", tuple(apps), n_spe, strategy, objective
            )
            specs.append((composite, platform, strategy, objective, seed))
            keys.append((strategy, n_spe))
    results = run_sweep(coschedule_point, specs, jobs=jobs)

    points = [
        CoschedulePoint(
            strategy=strategy,
            n_spe=n_spe,
            period=period,
            app_periods=app_periods,
            value=value,
            feasible=feasible,
            n_tasks_on_spes=n_on_spes,
        )
        for (strategy, n_spe), (period, app_periods, value, feasible, n_on_spes)
        in zip(keys, results)
    ]
    return CoscheduleResult(
        app_names=tuple(composite.app_names),
        objective=objective,
        points=points,
    )


def main(
    apps: Optional[Sequence[str]] = None,
    objective: str = "period",
    strategies: Optional[Sequence[str]] = None,
    spe_counts: Optional[Sequence[int]] = None,
    jobs: Optional[int] = None,
) -> CoscheduleResult:
    """CLI entry: print the deterministic per-app period table."""
    result = run(
        apps=tuple(apps) if apps else DEFAULT_APPS,
        spe_counts=tuple(spe_counts) if spe_counts else DEFAULT_SPE_COUNTS,
        strategies=tuple(strategies) if strategies else ("genetic_algorithm",),
        objective=objective,
        jobs=jobs,
    )
    print(result.table())
    return result
