"""Figure 7 — speed-up vs number of SPEs, per strategy.

For each of the three §6.2 task graphs (CCR 0.775) and each number of SPEs
0…8, map with {MILP, GREEDYCPU, GREEDYMEM} and measure the simulated
steady-state throughput, normalised to the measured PPE-only throughput.
The paper's result: MILP mappings scale to ≈2–3× at 8 SPEs while both
greedy heuristics plateau near 1.3×.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..generator.paper_graphs import paper_suite
from ..graph.stream_graph import StreamGraph
from ..platform.cell import CellPlatform
from ..simulator import SimConfig
from ..steady_state.mapping import Mapping
from .common import (
    PAPER_STRATEGIES,
    MeasuredPoint,
    ascii_plot,
    build_mapping,
    measure_throughput,
)

__all__ = ["Fig7Result", "run", "main", "DEFAULT_SPE_COUNTS"]

DEFAULT_SPE_COUNTS: Tuple[int, ...] = tuple(range(0, 9))


@dataclass(frozen=True)
class Fig7Result:
    """Speed-up points for one graph: series keyed by strategy."""

    graph_name: str
    points: List[MeasuredPoint]

    def series(self) -> Dict[str, List[Tuple[int, float]]]:
        out: Dict[str, List[Tuple[int, float]]] = {}
        for p in self.points:
            out.setdefault(p.series, []).append((int(p.x), p.y))
        for values in out.values():
            values.sort()
        return out

    def table(self) -> str:
        series = self.series()
        strategies = sorted(series)
        counts = sorted({x for pts in series.values() for x, _ in pts})
        header = "nSPE  " + "  ".join(f"{s:>12}" for s in strategies)
        rows = [f"Figure 7 — {self.graph_name}", header]
        for count in counts:
            cells = []
            for s in strategies:
                match = [y for x, y in series[s] if x == count]
                cells.append(f"{match[0]:12.2f}" if match else " " * 12)
            rows.append(f"{count:4d}  " + "  ".join(cells))
        return "\n".join(rows)


def run_one(
    graph: StreamGraph,
    spe_counts: Sequence[int] = DEFAULT_SPE_COUNTS,
    strategies: Sequence[str] = PAPER_STRATEGIES,
    n_instances: int = 1000,
    config: Optional[SimConfig] = None,
    base_platform: Optional[CellPlatform] = None,
) -> Fig7Result:
    """Speed-up sweep for one graph."""
    config = config or SimConfig.realistic()
    base_platform = base_platform or CellPlatform.qs22()
    # The reference: everything on the PPE, measured once (§6.4: "the
    # achieved throughput normalised to the throughput when using only the
    # PPE").
    ppe_only = Mapping.all_on_ppe(graph, base_platform.with_spes(0))
    baseline = measure_throughput(ppe_only, n_instances, config)
    base_rate = baseline.steady_state_throughput()

    points: List[MeasuredPoint] = []
    for n_spe in spe_counts:
        platform = base_platform.with_spes(n_spe)
        for strategy in strategies:
            mapping = build_mapping(strategy, graph, platform)
            result = measure_throughput(mapping, n_instances, config)
            ratio = result.steady_state_throughput() / base_rate
            points.append(
                MeasuredPoint(
                    series=strategy,
                    x=float(n_spe),
                    y=ratio,
                    detail=f"{graph.name}",
                )
            )
    return Fig7Result(graph_name=graph.name, points=points)


def run(
    spe_counts: Sequence[int] = DEFAULT_SPE_COUNTS,
    strategies: Sequence[str] = PAPER_STRATEGIES,
    n_instances: int = 1000,
    config: Optional[SimConfig] = None,
    graphs: Optional[Sequence[StreamGraph]] = None,
) -> List[Fig7Result]:
    """Regenerate Fig. 7a/7b/7c (all three graphs)."""
    graphs = list(graphs) if graphs is not None else paper_suite()
    return [
        run_one(graph, spe_counts, strategies, n_instances, config)
        for graph in graphs
    ]


def main(n_instances: int = 1000) -> List[Fig7Result]:
    """CLI entry: print tables and plots for all three graphs."""
    results = run(n_instances=n_instances)
    for result in results:
        print(result.table())
        print(
            ascii_plot(
                result.points, x_label="number of SPEs", y_label="speed-up"
            )
        )
        print()
    return results
