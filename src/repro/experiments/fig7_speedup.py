"""Figure 7 — speed-up vs number of SPEs, per strategy.

For each of the three §6.2 task graphs (CCR 0.775) and each number of SPEs
0…8, map with {MILP, GREEDYCPU, GREEDYMEM} and measure the simulated
steady-state throughput, normalised to the measured PPE-only throughput.
The paper's result: MILP mappings scale to ≈2–3× at 8 SPEs while both
greedy heuristics plateau near 1.3×.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..generator.paper_graphs import paper_suite
from ..graph.stream_graph import StreamGraph
from ..platform.cell import CellPlatform
from ..simulator import SimConfig
from .common import (
    PAPER_STRATEGIES,
    MeasuredPoint,
    SweepRef,
    ascii_plot,
    kernel_note,
    rate_of_point,
    validate_strategies,
)
from .parallel import point_seed, run_sweep

__all__ = ["Fig7Result", "run", "main", "DEFAULT_SPE_COUNTS"]

DEFAULT_SPE_COUNTS: Tuple[int, ...] = tuple(range(0, 9))


@dataclass(frozen=True)
class Fig7Result:
    """Speed-up points for one graph: series keyed by strategy."""

    graph_name: str
    points: List[MeasuredPoint]

    def series(self) -> Dict[str, List[Tuple[int, float]]]:
        out: Dict[str, List[Tuple[int, float]]] = {}
        for p in self.points:
            out.setdefault(p.series, []).append((int(p.x), p.y))
        for values in out.values():
            values.sort()
        return out

    def table(self) -> str:
        series = self.series()
        strategies = sorted(series)
        counts = sorted({x for pts in series.values() for x, _ in pts})
        header = "nSPE  " + "  ".join(f"{s:>12}" for s in strategies)
        rows = [f"Figure 7 — {self.graph_name}{kernel_note()}", header]
        for count in counts:
            cells = []
            for s in strategies:
                match = [y for x, y in series[s] if x == count]
                cells.append(f"{match[0]:12.2f}" if match else " " * 12)
            rows.append(f"{count:4d}  " + "  ".join(cells))
        return "\n".join(rows)


def run_one(
    graph: StreamGraph,
    spe_counts: Sequence[int] = DEFAULT_SPE_COUNTS,
    strategies: Sequence[str] = PAPER_STRATEGIES,
    n_instances: int = 1000,
    config: Optional[SimConfig] = None,
    base_platform: Optional[CellPlatform] = None,
    jobs: Optional[int] = None,
) -> Fig7Result:
    """Speed-up sweep for one graph, optionally fanned over ``jobs`` workers."""
    strategies = validate_strategies(strategies)  # fail fast, not in a worker
    config = config or SimConfig.realistic()
    base_platform = base_platform or CellPlatform.qs22()
    # The graph and sim config are shared by every point of the sweep:
    # ship them once per worker through the sweep context instead of
    # re-pickling them into all |spe_counts| × |strategies| specs.
    common = {"graph": graph, "config": config}
    graph_ref, config_ref = SweepRef("graph"), SweepRef("config")
    # The reference: everything on the PPE, measured once (§6.4: "the
    # achieved throughput normalised to the throughput when using only the
    # PPE") — the first spec of the sweep.
    specs = [
        (graph_ref, base_platform.with_spes(0), "ppe", n_instances, config_ref)
    ]
    keys: List[Tuple[int, str]] = []
    for n_spe in spe_counts:
        platform = base_platform.with_spes(n_spe)
        for strategy in strategies:
            seed = point_seed("fig7", graph.name, n_spe, strategy)
            specs.append(
                (graph_ref, platform, strategy, n_instances, config_ref, seed)
            )
            keys.append((n_spe, strategy))
    rates = run_sweep(rate_of_point, specs, jobs=jobs, common=common)
    base_rate = rates[0]

    points = [
        MeasuredPoint(
            series=strategy,
            x=float(n_spe),
            y=rate / base_rate,
            detail=f"{graph.name}",
        )
        for (n_spe, strategy), rate in zip(keys, rates[1:])
    ]
    return Fig7Result(graph_name=graph.name, points=points)


def run(
    spe_counts: Sequence[int] = DEFAULT_SPE_COUNTS,
    strategies: Sequence[str] = PAPER_STRATEGIES,
    n_instances: int = 1000,
    config: Optional[SimConfig] = None,
    graphs: Optional[Sequence[StreamGraph]] = None,
    jobs: Optional[int] = None,
) -> List[Fig7Result]:
    """Regenerate Fig. 7a/7b/7c (all three graphs)."""
    graphs = list(graphs) if graphs is not None else paper_suite()
    return [
        run_one(graph, spe_counts, strategies, n_instances, config, jobs=jobs)
        for graph in graphs
    ]


def main(
    n_instances: int = 1000,
    jobs: Optional[int] = None,
    strategies: Optional[Sequence[str]] = None,
) -> List[Fig7Result]:
    """CLI entry: print tables and plots for all three graphs."""
    results = run(
        strategies=strategies or PAPER_STRATEGIES,
        n_instances=n_instances,
        jobs=jobs,
    )
    for result in results:
        print(result.table())
        print(
            ascii_plot(
                result.points, x_label="number of SPEs", y_label="speed-up"
            )
        )
        print()
    return results
