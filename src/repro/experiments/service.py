"""Service experiment: admission batching × migration budget vs latency.

The serving-loop companion of :mod:`repro.experiments.online`: each
point boots a :class:`~repro.runtime.service.SchedulerService` around a
fresh :class:`~repro.runtime.scheduler.OnlineScheduler`, replays a
seeded scenario through the async load driver
(:func:`repro.runtime.service.play`), and reads the p50/p99 admission
latency off the :mod:`repro.obs` histograms plus the admissions/sec
wall rate.  The grid is **admission batch** (requests drained per
serving-loop iteration) × **migration budget**; the scenario seed
derives from ``(seed, load, n_events)`` only, so every grid point
replays the identical timeline — the batch/budget axes are isolated.

Every point runs under :func:`repro.experiments.parallel.
run_sweep_telemetry` (a fresh metrics registry per point), because the
latency columns *are* the telemetry.  The queue is sized to the
timeline (no shedding, no deadlines), so the scheduler sees every event
exactly as an offline run would: the comparable fields of a point —
acceptance, periods, feasibility — are deterministic and identical for
any ``jobs`` value, while the latency/throughput columns are
wall-clock sidecars (``compare=False``).
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from pathlib import Path
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ExperimentError
from ..obs import metrics as _metrics
from ..platform.cell import CellPlatform
from ..runtime.scenario import ScenarioGenerator
from ..runtime.scheduler import OnlineScheduler
from ..runtime.service import SchedulerService, play
from ..steady_state.objective import OBJECTIVES
from .common import kernel_note
from .parallel import point_seed, run_sweep_telemetry

__all__ = [
    "DEFAULT_BATCHES",
    "DEFAULT_BUDGETS",
    "DEFAULT_EVENTS",
    "DEFAULT_LOAD",
    "ServicePoint",
    "ServiceResult",
    "service_point",
    "run",
    "main",
]

#: Admission batch sizes swept by default: per-request, paired, bulk.
DEFAULT_BATCHES: Tuple[int, ...] = (1, 2, 8)

#: Migration budgets swept by default (mirrors the online sweep).
DEFAULT_BUDGETS: Tuple[int, ...] = (0, 2, 6)

#: Timeline length per scenario.
DEFAULT_EVENTS: int = 24

#: Offered load of the shared scenario (over-subscribed: admission
#: control is exercised, some arrivals are rejected).
DEFAULT_LOAD: float = 2.0


@dataclass(frozen=True)
class ServicePoint:
    """One (admission batch, migration budget) point of the sweep."""

    batch: int
    budget: int
    n_requests: int
    processed: int
    rejected: int  # service-level rejections (0 with the sized queue)
    arrivals: int
    accepted: int
    acceptance_rate: float
    mean_period: float
    all_feasible: bool
    batches: int
    #: Wall-clock sidecars (``compare=False``): admission-latency
    #: quantiles from the obs histogram and the admissions/sec rate.
    p50_admission_ms: Optional[float] = field(default=None, compare=False)
    p99_admission_ms: Optional[float] = field(default=None, compare=False)
    admissions_per_sec: Optional[float] = field(default=None, compare=False)


@dataclass(frozen=True)
class ServiceResult:
    """The latency/throughput table of one service sweep."""

    objective: str
    load: float
    n_events: int
    points: List[ServicePoint]
    metrics: Optional[Dict] = field(default=None, compare=False)

    def table(self) -> str:
        rows = [
            "Scheduler service — admission latency vs batch size and "
            f"migration budget [objective: {self.objective}, "
            f"load {self.load:g}, {self.n_events} events/scenario]"
            + kernel_note(),
            "   batch  budget  processed  accepted    rate  mean period"
            "  p50 ms  p99 ms    adm/s",
        ]
        for p in sorted(self.points, key=lambda p: (p.batch, p.budget)):
            flag = "" if p.all_feasible else "  !! infeasible state"
            rows.append(
                f"  {p.batch:6d}  {p.budget:6d}  "
                f"{p.processed:4d}/{p.n_requests:<4d}  "
                f"{p.accepted:3d}/{p.arrivals:<4d}  "
                f"{100.0 * p.acceptance_rate:5.1f}%  {p.mean_period:11.2f}"
                f"  {p.p50_admission_ms or 0.0:6.2f}"
                f"  {p.p99_admission_ms or 0.0:6.2f}"
                f"  {p.admissions_per_sec or 0.0:7.0f}{flag}"
            )
        return "\n".join(rows)


# ---------------------------------------------------------------------- #
# Sweep worker (top-level: pickles by reference into pool workers)


async def _drive(spec, events) -> Tuple:
    service = SchedulerService(
        OnlineScheduler(
            spec["platform"],
            objective=spec["objective"],
            migration_budget=spec["budget"],
            retry_limit=spec.get("retry_limit", 0),
            retry_backoff=spec.get("retry_backoff", 8.0),
        ),
        admission_batch=spec["batch"],
        # Sized to the whole timeline: no shedding, no deadline — the
        # scheduler sees every event, exactly like an offline run.
        max_queue=len(events) + 1,
        high_watermark=len(events) + 1,
    )
    await service.start()
    responses = await play(service, events)
    report = await service.stop()
    return responses, report, service.stats()


def service_point(spec) -> ServicePoint:
    """Boot a service, replay one seeded scenario, measure latency."""
    platform = spec["platform"]
    generator = ScenarioGenerator(
        platform,
        seed=spec["seed"],
        load=spec["load"],
        n_failures=spec["n_failures"],
    )
    events = generator.generate(spec["n_events"])
    t0 = perf_counter()
    responses, report, stats = asyncio.run(_drive(spec, events))
    wall = perf_counter() - t0
    p50 = p99 = rate = None
    reg = _metrics.REGISTRY
    if reg is not None:
        hist = reg.histograms.get("admission_latency")
        if hist is not None and hist.count:
            p50 = 1e3 * hist.quantile(0.5)
            p99 = 1e3 * hist.quantile(0.99)
        if wall > 0.0:
            rate = report.n_arrivals / wall
    return ServicePoint(
        batch=spec["batch"],
        budget=spec["budget"],
        n_requests=len(events),
        processed=stats["processed"],
        rejected=len([r for r in responses if r.status == "rejected"]),
        arrivals=report.n_arrivals,
        accepted=report.n_accepted,
        acceptance_rate=report.acceptance_rate,
        mean_period=report.mean_period,
        all_feasible=report.all_feasible,
        batches=stats["batches"],
        p50_admission_ms=p50,
        p99_admission_ms=p99,
        admissions_per_sec=rate,
    )


def run(
    batches: Sequence[int] = DEFAULT_BATCHES,
    budgets: Sequence[int] = DEFAULT_BUDGETS,
    load: float = DEFAULT_LOAD,
    n_events: int = DEFAULT_EVENTS,
    objective: str = "period",
    base_platform: Optional[CellPlatform] = None,
    seed: int = 0,
    jobs: Optional[int] = None,
    n_failures: int = 1,
    metrics: bool = False,
) -> ServiceResult:
    """Sweep the service over admission batches and migration budgets.

    Telemetry always runs (fresh registry per point — the latency
    columns come from the obs histograms); ``metrics=True`` additionally
    attaches the merged cross-worker snapshot to the result.
    """
    if not batches:
        raise ExperimentError("no batches given; want positive integers")
    if any(batch < 1 for batch in batches):
        raise ExperimentError(
            f"batches must be >= 1 (got {tuple(batches)!r})"
        )
    if not budgets:
        raise ExperimentError("no budgets given; want non-negative integers")
    if any(budget < 0 for budget in budgets):
        raise ExperimentError(
            f"budgets must be non-negative (got {tuple(budgets)!r})"
        )
    if load <= 0:
        raise ExperimentError(f"load must be positive (got {load!r})")
    if n_events < 2:
        raise ExperimentError(
            f"n_events must be at least 2 (got {n_events!r})"
        )
    if n_failures < 0:
        raise ExperimentError(
            f"n_failures must be non-negative (got {n_failures!r})"
        )
    if objective not in OBJECTIVES:
        raise ExperimentError(
            f"unknown objective {objective!r}; "
            f"pick from {', '.join(OBJECTIVES)}"
        )
    platform = base_platform or CellPlatform.qs22()
    # Batch/budget-independent scenario seed: the whole grid replays
    # the identical timeline, isolating the batch/budget axes.
    scenario_seed = point_seed("service", seed, load, n_events)
    specs = [
        dict(
            platform=platform,
            batch=batch,
            budget=budget,
            load=load,
            n_events=n_events,
            seed=scenario_seed,
            n_failures=n_failures,
            objective=objective,
        )
        for batch in batches
        for budget in budgets
    ]
    points, merged, _ = run_sweep_telemetry(service_point, specs, jobs=jobs)
    return ServiceResult(
        objective=objective,
        load=load,
        n_events=n_events,
        points=list(points),
        metrics=merged.snapshot() if metrics else None,
    )


def main(
    batches: Optional[Sequence[int]] = None,
    budgets: Optional[Sequence[int]] = None,
    load: Optional[float] = None,
    n_events: Optional[int] = None,
    objective: str = "period",
    seed: Optional[int] = None,
    jobs: Optional[int] = None,
    n_failures: Optional[int] = None,
    metrics: Optional[str] = None,
) -> ServiceResult:
    """CLI entry: print the service latency/throughput table.

    ``metrics`` is an output path for the merged cross-worker metrics
    snapshot (JSON), exactly like the online experiment's flag.
    """
    result = run(
        batches=tuple(batches) if batches is not None else DEFAULT_BATCHES,
        budgets=tuple(budgets) if budgets is not None else DEFAULT_BUDGETS,
        load=load if load is not None else DEFAULT_LOAD,
        n_events=n_events if n_events is not None else DEFAULT_EVENTS,
        objective=objective,
        seed=seed if seed is not None else 0,
        jobs=jobs,
        n_failures=n_failures if n_failures is not None else 1,
        metrics=metrics is not None,
    )
    print(result.table())
    if metrics is not None:
        Path(metrics).write_text(
            json.dumps(result.metrics, indent=2, sort_keys=True) + "\n"
        )
        print(f"merged metrics written to {metrics}")
    return result
