"""Deterministic parallel sweep runner for the experiment drivers.

Every figure of §6 is a sweep over independent (graph, platform, strategy)
points; each point bundles everything its evaluation needs, so the points
can be fanned across ``multiprocessing`` workers.  Three properties make
the fan-out safe:

* **order preservation** — ``Pool.map`` returns results in spec order, so
  the assembled figures are identical for any worker count;
* **self-contained specs** — workers never share mutable state; all
  randomness is seeded inside the spec (strategies use fixed seeds,
  :func:`point_seed` derives stable per-point seeds when one is needed);
* **top-level workers** — the worker callables live in
  :mod:`repro.experiments.common`, so they pickle by reference under both
  fork and spawn start methods.

``jobs`` semantics (shared by the ``fig*`` drivers and the CLI ``--jobs``
flag): ``None``/``0``/``1`` run serially in-process, ``n > 1`` uses up to
``n`` worker processes, and any negative value means "all CPU cores".
"""

from __future__ import annotations

import multiprocessing
import os
import zlib
from typing import Callable, Iterable, List, Optional, TypeVar

__all__ = ["effective_jobs", "point_seed", "run_sweep"]

S = TypeVar("S")
R = TypeVar("R")


def effective_jobs(jobs: Optional[int], n_specs: int) -> int:
    """The number of worker processes a sweep will actually use."""
    if jobs is None or jobs == 0 or jobs == 1:
        return 1
    if jobs < 0:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, n_specs))


def point_seed(*key) -> int:
    """A stable 32-bit seed derived from a sweep-point key.

    Unlike ``hash()`` this is stable across processes and interpreter
    runs (no PYTHONHASHSEED dependence), so seeded strategies give the
    same answer for the same point no matter which worker draws it.
    """
    return zlib.crc32(repr(key).encode("utf-8"))


def run_sweep(
    worker: Callable[[S], R],
    specs: Iterable[S],
    jobs: Optional[int] = None,
) -> List[R]:
    """Evaluate ``worker`` over ``specs``, optionally across processes.

    Results come back in spec order regardless of ``jobs``, and the serial
    path (``jobs in (None, 0, 1)``, a single spec, or a nested call from
    inside a pool worker) avoids process start-up entirely.
    """
    specs = list(specs)
    n_workers = effective_jobs(jobs, len(specs))
    if n_workers <= 1 or multiprocessing.current_process().daemon:
        return [worker(spec) for spec in specs]
    with multiprocessing.get_context().Pool(processes=n_workers) as pool:
        return pool.map(worker, specs)
