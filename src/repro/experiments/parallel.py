"""Deterministic parallel sweep runner for the experiment drivers.

Every figure of §6 is a sweep over independent (graph, platform, strategy)
points; each point bundles everything its evaluation needs, so the points
can be fanned across ``multiprocessing`` workers.  Three properties make
the fan-out safe:

* **order preservation** — ``Pool.map`` returns results in spec order, so
  the assembled figures are identical for any worker count;
* **self-contained specs** — workers never share mutable state; all
  randomness is seeded inside the spec (strategies use fixed seeds,
  :func:`point_seed` derives stable per-point seeds when one is needed);
* **top-level workers** — the worker callables live in
  :mod:`repro.experiments.common`, so they pickle by reference under both
  fork and spawn start methods.

Shared sweep context
--------------------

Specs used to carry their graph/platform objects inline, so every point
re-pickled them into its worker.  ``run_sweep`` now accepts a ``common``
mapping shipped **once per worker** through the pool initializer; specs
reference entries by key (see ``experiments.common.SweepRef``) and
workers resolve them via :func:`sweep_common`.  The serial path installs
the same context in-process, so serial and parallel sweeps run the
identical code and return identical results.

``jobs`` semantics (shared by the ``fig*`` drivers and the CLI ``--jobs``
flag): ``None``/``0``/``1`` run serially in-process, ``n > 1`` uses up to
``n`` worker processes, and any negative value means "all CPU cores".
``Pool.map`` is always given an explicit ``chunksize`` — by default the
same ~4-chunks-per-worker split ``Pool.map`` would pick on its own, made
explicit here so callers can see it and override it per sweep.
"""

from __future__ import annotations

import math
import multiprocessing
import os
import zlib
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple, TypeVar

from ..obs import metrics as _metrics
from ..obs import tracing as _tracing

__all__ = [
    "effective_jobs",
    "point_seed",
    "run_sweep",
    "run_sweep_telemetry",
    "sweep_common",
]

S = TypeVar("S")
R = TypeVar("R")

#: The per-process shared sweep context (``None`` outside a sweep).  In
#: worker processes it is installed by the pool initializer before any
#: spec arrives; the serial path installs/restores it around the loop.
_COMMON: Optional[Dict[str, Any]] = None


def _init_worker(common: Optional[Dict[str, Any]]) -> None:
    """Pool initializer: install the shared context once per worker."""
    global _COMMON
    _COMMON = common


def sweep_common() -> Optional[Dict[str, Any]]:
    """The shared context of the sweep driving this process, if any."""
    return _COMMON


def effective_jobs(jobs: Optional[int], n_specs: int) -> int:
    """The number of worker processes a sweep will actually use."""
    if jobs is None or jobs == 0 or jobs == 1:
        return 1
    if jobs < 0:
        jobs = os.cpu_count() or 1
    return max(1, min(jobs, n_specs))


def point_seed(*key) -> int:
    """A stable 32-bit seed derived from a sweep-point key.

    Unlike ``hash()`` this is stable across processes and interpreter
    runs (no PYTHONHASHSEED dependence), so seeded strategies give the
    same answer for the same point no matter which worker draws it.
    """
    return zlib.crc32(repr(key).encode("utf-8"))


def run_sweep(
    worker: Callable[[S], R],
    specs: Iterable[S],
    jobs: Optional[int] = None,
    common: Optional[Dict[str, Any]] = None,
    chunksize: Optional[int] = None,
) -> List[R]:
    """Evaluate ``worker`` over ``specs``, optionally across processes.

    Results come back in spec order regardless of ``jobs``, and the serial
    path (``jobs in (None, 0, 1)``, a single spec, or a nested call from
    inside a pool worker) avoids process start-up entirely.

    ``common`` is a dict of shared objects (graphs, platforms, configs)
    pickled **once per worker** via the pool initializer instead of once
    per spec; specs reference entries through
    :class:`repro.experiments.common.SweepRef` and workers read them back
    with :func:`sweep_common`.  ``chunksize`` overrides the default
    handed to ``Pool.map`` (the usual ~4-chunks-per-worker split,
    computed explicitly here so it is visible and overridable).
    """
    specs = list(specs)
    n_workers = effective_jobs(jobs, len(specs))
    if n_workers <= 1 or multiprocessing.current_process().daemon:
        if common is None:
            return [worker(spec) for spec in specs]
        global _COMMON
        previous = _COMMON
        _init_worker(common)
        try:
            return [worker(spec) for spec in specs]
        finally:
            _init_worker(previous)
    if chunksize is None:
        chunksize = max(1, math.ceil(len(specs) / (4 * n_workers)))
    with multiprocessing.get_context().Pool(
        processes=n_workers,
        initializer=_init_worker,
        initargs=(common,),
    ) as pool:
        return pool.map(worker, specs, chunksize=chunksize)


class _TelemetryWorker:
    """Per-spec telemetry harness around a sweep worker.

    Top-level class so instances pickle into pool workers (the wrapped
    worker itself pickles by reference, as ``run_sweep`` requires).
    Each call installs a **fresh** metrics registry (and, with
    ``trace=True``, a fresh tracer) for exactly the duration of the
    spec, then restores whatever was active before — so the returned
    ``(result, metrics_snapshot, trace_events)`` triple measures one
    point and nothing else, and the parent's merged totals are
    independent of worker count and chunking.
    """

    __slots__ = ("worker", "trace")

    def __init__(self, worker: Callable, trace: bool = False) -> None:
        self.worker = worker
        self.trace = bool(trace)

    def __call__(self, spec) -> Tuple[Any, Dict, List[Dict]]:
        previous_registry = _metrics.REGISTRY
        previous_tracer = _tracing.TRACER
        registry = _metrics.enable(_metrics.MetricsRegistry())
        tracer = _tracing.start(_tracing.Tracer()) if self.trace else None
        try:
            result = self.worker(spec)
        finally:
            if previous_registry is not None:
                _metrics.enable(previous_registry)
            else:
                _metrics.disable()
            if self.trace:
                # A trace=False wrapper leaves any user-installed tracer
                # (REPRO_TRACE=1) untouched.
                if previous_tracer is not None:
                    _tracing.start(previous_tracer)
                else:
                    _tracing.stop()
        events = tracer.events if tracer is not None else []
        return result, registry.snapshot(), events


def run_sweep_telemetry(
    worker: Callable[[S], R],
    specs: Iterable[S],
    jobs: Optional[int] = None,
    common: Optional[Dict[str, Any]] = None,
    chunksize: Optional[int] = None,
    trace: bool = False,
) -> Tuple[List[R], "_metrics.MetricsRegistry", List[Dict]]:
    """:func:`run_sweep` plus per-point metrics (and optional tracing).

    Every spec runs under a fresh :class:`~repro.obs.metrics.
    MetricsRegistry`; the workers ship their snapshots back through the
    ordinary ``Pool.map`` result channel and the parent folds them into
    one merged registry.  Counter totals and histogram counts in the
    merged view are identical for any ``jobs`` value (they count
    decisions, not wall time); histogram sums record per-worker
    wall-clock latencies.  With ``trace=True`` each spec also runs
    under a fresh :class:`~repro.obs.tracing.Tracer` and the
    concatenated event lists come back ready for a Chrome trace-event
    file (one track per worker pid).

    Returns ``(results, merged_registry, trace_events)`` with
    ``results`` in spec order, exactly as :func:`run_sweep` would give.
    """
    wrapped = _TelemetryWorker(worker, trace=trace)
    triples = run_sweep(
        wrapped, specs, jobs=jobs, common=common, chunksize=chunksize
    )
    merged = _metrics.MetricsRegistry()
    trace_events: List[Dict] = []
    for _, snapshot, events in triples:
        merged.merge(snapshot)
        trace_events.extend(events)
    return [triple[0] for triple in triples], merged, trace_events
