"""Experiment harnesses regenerating every figure and table of §6.

* :mod:`repro.experiments.fig6_rampup` — throughput vs #instances (Fig. 6);
* :mod:`repro.experiments.fig7_speedup` — speed-up vs #SPEs (Fig. 7a–c);
* :mod:`repro.experiments.fig8_ccr` — speed-up vs CCR (Fig. 8);
* :mod:`repro.experiments.tables` — solve-time table and β ablation;
* :mod:`repro.experiments.coschedule` — beyond the paper: several
  applications co-scheduled on one platform (per-app period table);
* :mod:`repro.experiments.online` — beyond the paper: the online
  scheduling runtime swept over offered load and migration budget
  (acceptance rate + mean period table);
* :mod:`repro.experiments.service` — beyond the paper: the asyncio
  scheduler service swept over admission batch and migration budget
  (p50/p99 admission latency + admissions/sec table).

Each module exposes ``run(...)`` returning structured results and
``main(...)`` printing paper-style tables and ASCII plots; the sweeping
figures accept ``jobs=N`` to fan their points across worker processes
(see :mod:`repro.experiments.parallel`).
"""

from . import (
    coschedule,
    fig6_rampup,
    fig7_speedup,
    fig8_ccr,
    online,
    parallel,
    service,
    tables,
)
from .common import (
    PAPER_STRATEGIES,
    STRATEGIES,
    MeasuredPoint,
    ascii_plot,
    build_mapping,
    measure_throughput,
    measured_speedup,
    to_csv,
    validate_strategies,
)
from .parallel import run_sweep

__all__ = [
    "coschedule",
    "fig6_rampup",
    "fig7_speedup",
    "fig8_ccr",
    "online",
    "parallel",
    "run_sweep",
    "service",
    "tables",
    "PAPER_STRATEGIES",
    "STRATEGIES",
    "validate_strategies",
    "MeasuredPoint",
    "ascii_plot",
    "build_mapping",
    "measure_throughput",
    "measured_speedup",
    "to_csv",
]
