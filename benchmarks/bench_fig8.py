"""Benchmark regenerating Fig. 8 — speed-up of the MILP mapping vs CCR.

All three graphs × the six CCR variants (0.775 … 4.6) on the 8-SPE QS22.
Artefacts: ``fig8.csv`` / ``fig8.txt`` in ``benchmarks/results/``.

Expected shape (paper §6.4.3): every series declines as the CCR grows —
larger payloads inflate the §4.2 buffers, SPE local stores fill up, and
the mapping degenerates toward the PPE (speed-up → 1).
"""

import pytest

from repro.experiments import ascii_plot, to_csv
from repro.experiments.fig8_ccr import run

from conftest import N_INSTANCES, save_artifact


@pytest.mark.benchmark(group="fig8")
def test_fig8_ccr_sweep(benchmark, results_dir):
    result = benchmark.pedantic(
        run,
        kwargs=dict(n_instances=N_INSTANCES),
        rounds=1,
        iterations=1,
    )
    save_artifact(results_dir, "fig8.csv", to_csv(result.points))
    text = result.table() + "\n" + ascii_plot(
        result.points, x_label="CCR", y_label="speed-up"
    )
    save_artifact(results_dir, "fig8.txt", text)

    for name, series in result.series().items():
        first, last = series[0][1], series[-1][1]
        benchmark.extra_info[f"{name} @{series[0][0]}"] = round(first, 3)
        benchmark.extra_info[f"{name} @{series[-1][0]}"] = round(last, 3)
        # The paper's headline: high CCR kills the speed-up.
        assert last < first, f"{name}: no decline across the CCR sweep"
        # At the compute-bound end the MILP meaningfully beats the PPE.
        assert first > 1.5
        # At the communication-bound end it approaches the PPE-only policy.
        assert last < first * 0.75
