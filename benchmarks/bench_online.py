"""Online-runtime benchmarks: admission + remapping must stay delta-fast.

The :class:`~repro.runtime.scheduler.OnlineScheduler` promises that
per-candidate work (placing an arriving task, scoring a remapping move)
is delta-scored in O(deg) — never a full ``analyze()`` per candidate.
``use_delta=False`` swaps in the full-``analyze()`` reference evaluator,
so replaying the *same* seeded scenario through both paths isolates
exactly that contract:

* ``test_online_delta_speedup_guard`` replays a 20-event scenario
  (arrivals, departures, one SPE failure, non-zero migration budget)
  and **fails** if the delta path is less than 5× faster than the
  reference — the acceptance guard of the runtime PR (the real ratio is
  far higher; 5× leaves CI noise headroom).  It also asserts the two
  paths produce the identical report, so the speed-up never comes from
  diverging decisions.
* ``test_online_delta_speedup_guard_faulty`` holds the same ≥5× bar on
  a failure-heavy injected timeline (correlated bursts + a perturbation
  window + brownout + retries), so the evacuation/repair/shed paths —
  not just admission — stay inside the delta-scored contract.
* ``test_online_admission_throughput`` replays the scenario with the
  metrics registry enabled and reports **admissions/sec** (decision
  count over wall time, plus the mean admission latency from the
  registry's histogram) — and asserts instrumentation is passive: the
  metrics-on report equals the metrics-off report.

Run explicitly (benchmarks are not collected by the default test run)::

    PYTHONPATH=src python -m pytest benchmarks/bench_online.py -q
"""

import time
from dataclasses import replace

import pytest

from repro.obs import metrics
from repro.platform import CellPlatform
from repro.runtime import FaultInjector, OnlineScheduler, ScenarioGenerator


@pytest.fixture(scope="module")
def platform():
    return CellPlatform.qs22()


def make_events(platform, n_events=20):
    return ScenarioGenerator(platform, seed=5, load=2.5).generate(n_events)


def make_faulty_events(platform, n_events=20):
    """A failure-heavy timeline: correlated bursts over a loaded scenario."""
    base = ScenarioGenerator(
        platform, seed=5, load=3.0, n_failures=0
    ).generate(n_events)
    injector = FaultInjector(
        platform, seed=9, correlation=0.6, mean_downtime=15.0
    )
    return injector.inject(base, n_bursts=3, n_perturbations=1)


def play(platform, events, use_delta, **knobs):
    scheduler = OnlineScheduler(
        platform, migration_budget=3, use_delta=use_delta, **knobs
    )
    return scheduler.run(events)


def same_decisions(a, b):
    """Report equality modulo the evaluation-engine tag.

    The delta path records the resolved kernel backend while the
    ``use_delta=False`` path records ``"reference"`` — the guards
    compare the *decisions*, so the tag is normalized away."""
    return replace(a, kernel_backend="") == replace(b, kernel_backend="")


@pytest.mark.benchmark(group="online")
def test_online_runtime_delta(benchmark, platform):
    """Full 20-event scenario through the delta-evaluated scheduler."""
    events = make_events(platform)
    report = benchmark(play, platform, events, True)
    assert report.n_events == 20


@pytest.mark.benchmark(group="online")
def test_online_scenario_generation(benchmark, platform):
    """Scenario generation alone (to attribute the runtime's cost)."""
    events = benchmark(make_events, platform)
    assert len(events) == 20


def test_online_delta_speedup_guard(platform):
    """Admission + remapping through the delta engine must stay ≥5×
    faster than the full-analyze() reference path — the acceptance
    guard of the online-runtime PR."""
    events = make_events(platform)

    def time_best_of(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    delta_time = time_best_of(lambda: play(platform, events, True))
    full_time = time_best_of(lambda: play(platform, events, False))
    # Same decisions, so the ratio is pure evaluation cost.
    assert same_decisions(
        play(platform, events, True), play(platform, events, False)
    )
    speedup = full_time / delta_time
    assert speedup >= 5.0, (
        f"online scheduling via the delta engine is only {speedup:.1f}x "
        f"faster than the full-analyze reference ({delta_time * 1e3:.1f} ms "
        f"vs {full_time * 1e3:.1f} ms for a 20-event scenario); the O(deg) "
        "per-candidate contract of the runtime is broken"
    )


def test_online_delta_speedup_guard_faulty(platform):
    """The ≥5× delta-vs-reference bar must also hold on a failure-heavy
    timeline, where the work is dominated by evacuation, budgeted repair
    and degradation handling rather than admission."""
    events = make_faulty_events(platform)
    knobs = dict(retry_limit=1, brownout_threshold=0.4)
    assert sum(e.event_type == "failure" for e in events) >= 3

    def time_best_of(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    delta_time = time_best_of(lambda: play(platform, events, True, **knobs))
    full_time = time_best_of(lambda: play(platform, events, False, **knobs))
    assert same_decisions(
        play(platform, events, True, **knobs),
        play(platform, events, False, **knobs),
    )
    speedup = full_time / delta_time
    assert speedup >= 5.0, (
        f"evacuation/repair via the delta engine is only {speedup:.1f}x "
        f"faster than the full-analyze reference ({delta_time * 1e3:.1f} ms "
        f"vs {full_time * 1e3:.1f} ms for a failure-heavy timeline); the "
        "O(deg) per-candidate contract of the degradation paths is broken"
    )


def test_online_admission_throughput(platform):
    """Report admissions/sec through the instrumentation layer, and
    hold its passivity contract: the metrics-on replay must produce the
    identical report as the metrics-off replay."""
    events = make_events(platform)
    baseline = play(platform, events, True)
    registry = metrics.enable(metrics.MetricsRegistry())
    try:
        start = time.perf_counter()
        report = play(platform, events, True)
        elapsed = time.perf_counter() - start
    finally:
        metrics.disable()
    assert report == baseline, "enabling metrics changed the run"
    snap = registry.snapshot()
    decided = snap["counters"].get("admissions.accepted", 0) + snap[
        "counters"
    ].get("admissions.rejected", 0)
    assert decided == sum(
        1 for r in report.records if r.accepted is not None
    ), "admission counters disagree with the report's decision records"
    assert decided > 0
    hist = snap["histograms"]["admission_latency"]
    assert hist["count"] == decided
    print(
        f"\nonline admission throughput: {decided / elapsed:,.0f} "
        f"admissions/sec ({decided} decisions in {elapsed * 1e3:.1f} ms; "
        f"mean admission latency {1e3 * hist['sum'] / hist['count']:.2f} ms)"
    )
