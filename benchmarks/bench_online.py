"""Online-runtime benchmarks: admission + remapping must stay delta-fast.

The :class:`~repro.runtime.scheduler.OnlineScheduler` promises that
per-candidate work (placing an arriving task, scoring a remapping move)
is delta-scored in O(deg) — never a full ``analyze()`` per candidate.
``use_delta=False`` swaps in the full-``analyze()`` reference evaluator,
so replaying the *same* seeded scenario through both paths isolates
exactly that contract:

* ``test_online_delta_speedup_guard`` replays a 20-event scenario
  (arrivals, departures, one SPE failure, non-zero migration budget)
  and **fails** if the delta path is less than 5× faster than the
  reference — the acceptance guard of the runtime PR (the real ratio is
  far higher; 5× leaves CI noise headroom).  It also asserts the two
  paths produce the identical report, so the speed-up never comes from
  diverging decisions.

Run explicitly (benchmarks are not collected by the default test run)::

    PYTHONPATH=src python -m pytest benchmarks/bench_online.py -q
"""

import time

import pytest

from repro.platform import CellPlatform
from repro.runtime import OnlineScheduler, ScenarioGenerator


@pytest.fixture(scope="module")
def platform():
    return CellPlatform.qs22()


def make_events(platform, n_events=20):
    return ScenarioGenerator(platform, seed=5, load=2.5).generate(n_events)


def play(platform, events, use_delta):
    scheduler = OnlineScheduler(
        platform, migration_budget=3, use_delta=use_delta
    )
    return scheduler.run(events)


@pytest.mark.benchmark(group="online")
def test_online_runtime_delta(benchmark, platform):
    """Full 20-event scenario through the delta-evaluated scheduler."""
    events = make_events(platform)
    report = benchmark(play, platform, events, True)
    assert report.n_events == 20


@pytest.mark.benchmark(group="online")
def test_online_scenario_generation(benchmark, platform):
    """Scenario generation alone (to attribute the runtime's cost)."""
    events = benchmark(make_events, platform)
    assert len(events) == 20


def test_online_delta_speedup_guard(platform):
    """Admission + remapping through the delta engine must stay ≥5×
    faster than the full-analyze() reference path — the acceptance
    guard of the online-runtime PR."""
    events = make_events(platform)

    def time_best_of(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    delta_time = time_best_of(lambda: play(platform, events, True))
    full_time = time_best_of(lambda: play(platform, events, False))
    # Same decisions, so the ratio is pure evaluation cost.
    assert play(platform, events, True) == play(platform, events, False)
    speedup = full_time / delta_time
    assert speedup >= 5.0, (
        f"online scheduling via the delta engine is only {speedup:.1f}x "
        f"faster than the full-analyze reference ({delta_time * 1e3:.1f} ms "
        f"vs {full_time * 1e3:.1f} ms for a 20-event scenario); the O(deg) "
        "per-candidate contract of the runtime is broken"
    )
