"""Workload-layer benchmarks: delta-scored moves on multi-app composites.

Two questions, answered on the canonical 3-app mix (audio encoder +
video pipeline + crypto pipeline, 36 tasks):

* how much does the per-app bookkeeping cost?  The same move-scoring
  sweep runs on the composite (per-app sums maintained) and on an
  *equivalent single graph* — a plain ``StreamGraph`` with the identical
  tasks and edges but no application metadata — so the difference is
  exactly the workload layer's overhead;
* does delta scoring still clear the bar?  ``test_delta_speedup_guard``
  times delta-scoring a candidate move against a full ``analyze()`` on
  the composite and **fails** if the speed-up drops below 5× — the
  acceptance guard for the co-scheduling refactor (the real ratio is
  an order of magnitude higher; 5× leaves CI noise headroom).

Run explicitly (benchmarks are not collected by the default test run)::

    PYTHONPATH=src python -m pytest benchmarks/bench_workload.py -q
"""

import random
import time

import pytest

from repro.apps import audio_encoder, crypto_pipeline, video_pipeline
from repro.graph import Workload
from repro.platform import CellPlatform
from repro.steady_state import DeltaAnalyzer, Mapping, analyze, make_objective


@pytest.fixture(scope="module")
def composite():
    workload = Workload("bench-mix")
    workload.add_app("audio", audio_encoder(), weight=2.0)
    workload.add_app("video", video_pipeline())
    workload.add_app("crypto", crypto_pipeline())
    return workload.compile()


@pytest.fixture(scope="module")
def single_equivalent(composite):
    """The same tasks/edges as one plain graph (no app metadata)."""
    return composite.copy("bench-single")


@pytest.fixture(scope="module")
def platform():
    return CellPlatform.qs22()


def spread_mapping(graph, platform, seed=0):
    rng = random.Random(seed)
    return Mapping(
        graph,
        platform,
        {n: rng.randrange(platform.n_pes) for n in graph.task_names()},
    )


def _score_sweep(state, names, n_pes):
    total = 0.0
    for name in names:
        for pe in range(n_pes):
            total += state.score_move(name, pe).period
    return total


@pytest.mark.benchmark(group="workload")
def test_score_neighbourhood_composite(benchmark, composite, platform):
    """Full move neighbourhood on the 3-app composite (per-app tracking)."""
    state = DeltaAnalyzer(spread_mapping(composite, platform))
    total = benchmark(
        _score_sweep, state, composite.task_names(), platform.n_pes
    )
    assert total > 0


@pytest.mark.benchmark(group="workload")
def test_score_neighbourhood_single_equivalent(
    benchmark, single_equivalent, platform
):
    """The identical sweep without app metadata — the overhead baseline."""
    state = DeltaAnalyzer(spread_mapping(single_equivalent, platform))
    total = benchmark(
        _score_sweep, state, single_equivalent.task_names(), platform.n_pes
    )
    assert total > 0


@pytest.mark.benchmark(group="workload")
def test_objective_sweep_weighted(benchmark, composite, platform):
    """Move neighbourhood under the weighted objective (per-app periods
    recomputed per candidate from cached peaks)."""
    state = DeltaAnalyzer(spread_mapping(composite, platform))
    obj = make_objective("weighted", composite)
    names = composite.task_names()

    def sweep():
        total = 0.0
        for name in names:
            for pe in range(platform.n_pes):
                total += state.evaluate_move(name, pe, obj).value
        return total

    assert benchmark(sweep) > 0


def test_delta_speedup_guard(composite, platform):
    """Delta-scoring a candidate on the composite must stay ≥5× faster
    than a full analyze() — the acceptance guard of the workload PR."""
    state = DeltaAnalyzer(spread_mapping(composite, platform))
    names = composite.task_names()
    n_pes = platform.n_pes
    rng = random.Random(1)
    candidates = [
        (names[rng.randrange(len(names))], rng.randrange(n_pes))
        for _ in range(300)
    ]
    mapping = state.mapping()

    def time_best_of(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    def delta_pass():
        for name, pe in candidates:
            state.score_move(name, pe)

    def analyze_pass():
        for name, pe in candidates:
            analyze(mapping.with_assignment(name, pe))

    delta_time = time_best_of(delta_pass)
    analyze_time = time_best_of(analyze_pass)
    speedup = analyze_time / delta_time
    assert speedup >= 5.0, (
        f"delta scoring on the composite is only {speedup:.1f}x faster "
        f"than analyze() ({delta_time * 1e3:.1f} ms vs "
        f"{analyze_time * 1e3:.1f} ms for 300 candidates); the O(deg) "
        "contract of the workload refactor is broken"
    )
