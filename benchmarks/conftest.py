"""Benchmark configuration.

Every figure/table of the paper's evaluation has one benchmark here.  The
experiment benches run a single, full iteration (``pedantic`` mode) — the
quantity of interest is the *reproduced artefact*, which each bench writes
to ``benchmarks/results/`` as text/CSV; the timing pytest-benchmark records
is the cost of regenerating it.

Set ``REPRO_BENCH_INSTANCES`` to change the simulated stream length
(default 1000; the paper used 5000–10000 — larger values sharpen the
steady-state estimate but scale wall time linearly).
"""

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"

#: Simulated stream length used by the experiment benches.
N_INSTANCES = int(os.environ.get("REPRO_BENCH_INSTANCES", "1000"))


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_artifact(results_dir: Path, name: str, text: str) -> Path:
    path = results_dir / name
    path.write_text(text)
    return path
