"""Delta-engine micro-benchmarks backing the CI benchmark-regression gate.

Unlike the ``fig*`` artefact benches these are small, deterministic and
fast (milliseconds per round), so pytest-benchmark statistics are stable
enough to compare against the committed ``benchmarks/BENCH_baseline.json``
with ``--benchmark-compare-fail=mean:25%``.  They cover the paths a
performance regression would hurt most:

* scoring a full move neighbourhood in the default (mapping-independent)
  buffer model — the ``local_search`` / ``tabu_search`` hot path;
* the same sweep under ``elide_local_comm`` + ``merge_same_pe_buffers``,
  where the engine additionally maintains the mapping-dependent model;
* an apply-heavy random walk (the ``simulated_annealing`` profile);
* a small end-to-end ``genetic_algorithm`` run (clone + bulk crossover).

Refreshing the baseline: run
``PYTHONPATH=src python -m pytest benchmarks/bench_delta.py
benchmarks/bench_kernel.py -q
--benchmark-json=benchmarks/BENCH_baseline.json`` on the reference
machine — the committed baseline carries both files' timings, and the CI
gate compares both in one run (or download the ``benchmark-results``
artifact of a green CI run) and commit the file.
"""

import random

import pytest

from repro.generator import random_graph_1
from repro.heuristics import genetic_algorithm, greedy_cpu
from repro.platform import CellPlatform
from repro.steady_state import DeltaAnalyzer


@pytest.fixture(scope="module")
def graph():
    return random_graph_1()


@pytest.fixture(scope="module")
def platform():
    return CellPlatform.qs22()


@pytest.fixture(scope="module")
def mapping(graph, platform):
    return greedy_cpu(graph, platform)


def _score_sweep(state, names, n_pes):
    total = 0.0
    for name in names:
        for pe in range(n_pes):
            total += state.score_move(name, pe).period
    return total


@pytest.mark.benchmark(group="delta")
def test_score_neighbourhood_default(benchmark, graph, platform, mapping):
    """Full move neighbourhood, mapping-independent buffers (PR 1 path)."""
    state = DeltaAnalyzer(mapping)
    names = graph.task_names()
    total = benchmark(_score_sweep, state, names, platform.n_pes)
    assert total > 0


@pytest.mark.benchmark(group="delta")
def test_score_neighbourhood_elide_merge(benchmark, graph, platform, mapping):
    """Full move neighbourhood under the mapping-dependent buffer model."""
    state = DeltaAnalyzer(
        mapping, elide_local_comm=True, merge_same_pe_buffers=True
    )
    names = graph.task_names()
    total = benchmark(_score_sweep, state, names, platform.n_pes)
    assert total > 0


@pytest.mark.benchmark(group="delta")
def test_apply_walk_elide_merge(benchmark, graph, platform, mapping):
    """Apply-heavy random walk (annealing profile), mapping-dependent."""
    names = graph.task_names()
    n_pes = platform.n_pes

    def walk():
        state = DeltaAnalyzer(
            mapping, elide_local_comm=True, merge_same_pe_buffers=True
        )
        rng = random.Random(0)
        for _ in range(300):
            name = names[rng.randrange(len(names))]
            state.apply_move(name, rng.randrange(n_pes))
        return state.period()

    assert benchmark(walk) > 0


@pytest.mark.benchmark(group="delta")
def test_genetic_algorithm_small(benchmark, graph, platform):
    """End-to-end GA (clone, crossover, delta-scored mutation)."""

    def run():
        return genetic_algorithm(
            graph, platform, seed=0, generations=4, population_size=8
        )

    result = benchmark(run)
    assert result.graph is graph
