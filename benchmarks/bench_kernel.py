"""Compiled-kernel benchmarks: batched neighbourhood scoring vs per-candidate.

The compiled-kernel PR rewired ``DeltaAnalyzer`` onto integer-indexed
graph arrays (:mod:`repro.steady_state.compiled`) and added the batched
``score_moves`` / ``evaluate_moves`` / ``best_move`` API that every
neighbourhood scan (local search, tabu rounds, GA mutation, the online
runtime's admission and budgeted descent) now uses.  These benches pin
the two claims down on the paper's 50-task benchmark graph:

* the pytest-benchmark timings feed the CI ``benchmark-smoke``
  regression gate (compared against ``benchmarks/BENCH_baseline.json``
  with ``--benchmark-compare-fail=mean:25%``, exactly like
  ``bench_delta.py``);
* ``test_batched_speedup_guard`` **fails** if scoring the full move
  neighbourhood through ``score_moves`` is less than 3× faster than the
  equivalent per-candidate ``score_move`` loop — the acceptance bar of
  the compiled-kernel PR (the measured ratio has headroom above it; see
  ``benchmarks/profile_delta.py`` to see where the time goes);
* ``test_vectorized_speedup_guard`` **fails** if the numpy backend's
  whole-neighbourhood ``score_move_matrix`` pass is less than 5× faster
  than the scalar batched sweep — the acceptance bar of the vectorized
  kernel-backend PR.  Both guards skip their timing assertion (never the
  correctness cross-check) under ``REPRO_BENCH_NO_TIMING_ASSERT=1``;
  nightly CI runs them with the assertion armed.

Run explicitly (benchmarks are not collected by the default test run)::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernel.py -q

Refreshing the baseline: rerun together with the delta benches on the
reference machine, ``PYTHONPATH=src python -m pytest
benchmarks/bench_delta.py benchmarks/bench_kernel.py -q
--benchmark-json=benchmarks/BENCH_baseline.json``, and commit the file
(or download the ``benchmark-results`` artifact of a green CI run).
"""

import os
import time

import pytest

from repro.generator import random_graph_1
from repro.heuristics import greedy_cpu
from repro.platform import CellPlatform
from repro.steady_state import DeltaAnalyzer, make_objective, numpy_available

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend unavailable"
)


@pytest.fixture(scope="module")
def graph():
    return random_graph_1()


@pytest.fixture(scope="module")
def platform():
    return CellPlatform.qs22()


@pytest.fixture(scope="module")
def mapping(graph, platform):
    return greedy_cpu(graph, platform)


def _batched_sweep(state, names):
    """Full move neighbourhood through the batched kernel."""
    total = 0.0
    for name in names:
        for score in state.score_moves(name):
            total += score.period
    return total


def _scalar_sweep(state, names, n_pes):
    """The same neighbourhood, one ``score_move`` delta per candidate."""
    total = 0.0
    for name in names:
        for pe in range(n_pes):
            total += state.score_move(name, pe).period
    return total


@pytest.mark.benchmark(group="kernel")
def test_score_moves_full_neighbourhood(benchmark, graph, platform, mapping):
    """Batched sweep: one shared precomputation per task, O(1) per PE."""
    state = DeltaAnalyzer(mapping)
    names = graph.task_names()
    assert benchmark(_batched_sweep, state, names) > 0


@pytest.mark.benchmark(group="kernel")
def test_score_move_per_candidate(benchmark, graph, platform, mapping):
    """Reference loop: a fresh single-candidate scoring per (task, PE)."""
    state = DeltaAnalyzer(mapping)
    names = graph.task_names()
    assert benchmark(_scalar_sweep, state, names, platform.n_pes) > 0


@pytest.mark.benchmark(group="kernel")
def test_best_move_scan(benchmark, graph, platform, mapping):
    """One ``best_move`` pass — the budgeted-descent/admission primitive."""
    state = DeltaAnalyzer(mapping)
    obj = make_objective("period", graph)

    def scan():
        return state.best_move(objective=obj)

    benchmark(scan)


@pytest.mark.benchmark(group="kernel")
def test_evaluate_moves_objective(benchmark, graph, platform, mapping):
    """Objective-threaded batched sweep (the metaheuristics' inner loop)."""
    state = DeltaAnalyzer(mapping)
    names = graph.task_names()
    obj = make_objective("period", graph)

    def sweep():
        total = 0.0
        for name in names:
            for score in state.evaluate_moves(name, objective=obj):
                total += score.value
        return total

    assert benchmark(sweep) > 0


def test_batched_speedup_guard(graph, platform, mapping):
    """`score_moves` must sweep the full neighbourhood ≥3× faster than a
    per-candidate `score_move` loop — the compiled-kernel acceptance bar.

    Also cross-checks that the two paths agree verdict for verdict, so
    the speed-up is not bought with a different answer.
    """
    state = DeltaAnalyzer(mapping)
    names = graph.task_names()
    n_pes = platform.n_pes

    for name in names:
        batched = state.score_moves(name)
        for pe in range(n_pes):
            assert batched[pe] == state.score_move(name, pe)

    def time_best_of(fn, repeats=10):
        fn()  # warm caches outside the timed region
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    scalar_time = time_best_of(lambda: _scalar_sweep(state, names, n_pes))
    batched_time = time_best_of(lambda: _batched_sweep(state, names))
    if os.environ.get("REPRO_BENCH_NO_TIMING_ASSERT"):
        return  # noisy shared runners: correctness above still verified
    speedup = scalar_time / batched_time
    assert speedup >= 3.0, (
        f"batched neighbourhood scoring is only {speedup:.1f}x faster "
        f"than the per-candidate loop ({batched_time * 1e3:.2f} ms vs "
        f"{scalar_time * 1e3:.2f} ms for {len(names) * n_pes} candidates) "
        "on the 50-task benchmark graph; the compiled-kernel contract is "
        "broken"
    )


# ---------------------------------------------------------------------- #
# Vectorized numpy backend


@pytest.fixture(scope="module")
def np_state(mapping):
    return DeltaAnalyzer(mapping, backend="numpy")


@needs_numpy
@pytest.mark.benchmark(group="kernel-numpy")
def test_score_move_matrix_numpy(benchmark, np_state):
    """Whole move neighbourhood in one dense (tasks × PEs) kernel pass."""
    worst, _ = benchmark(np_state.score_move_matrix)
    assert float(worst.min()) > 0


@needs_numpy
@pytest.mark.benchmark(group="kernel-numpy")
def test_evaluate_all_moves_numpy(benchmark, graph, np_state):
    """Dense pass plus the per-candidate ObjectiveScore assembly."""
    obj = make_objective("period", graph)
    rows = benchmark(np_state.evaluate_all_moves, objective=obj)
    assert rows[0][0].period > 0


@needs_numpy
@pytest.mark.benchmark(group="kernel-numpy")
def test_score_swaps_numpy(benchmark, graph, np_state):
    """Pairwise swap kernel over every distinct-PE task pair."""
    names = graph.task_names()
    pairs = [
        (a, b)
        for i, a in enumerate(names)
        for b in names[i + 1 :]
        if np_state.pe_of(a) != np_state.pe_of(b)
    ]
    scores = benchmark(np_state.score_swaps, pairs)
    assert len(scores) == len(pairs)


@needs_numpy
@pytest.mark.benchmark(group="kernel-numpy")
def test_score_assignments_numpy(benchmark, graph, platform, np_state):
    """Population pass: 64 whole candidate mappings at once (GA's loop)."""
    import random

    rng = random.Random(0)
    names = graph.task_names()
    assignments = [
        {name: rng.randrange(platform.n_pes) for name in names}
        for _ in range(64)
    ]
    scores = benchmark(np_state.score_assignments, assignments)
    assert len(scores) == 64


@needs_numpy
@pytest.mark.benchmark(group="kernel-numpy")
def test_best_move_scan_numpy(benchmark, graph, np_state):
    """`best_move` through the dense masked-argmin fast path."""
    obj = make_objective("period", graph)
    benchmark(np_state.best_move, objective=obj)


@needs_numpy
def test_vectorized_speedup_guard(graph, platform, mapping):
    """The numpy whole-neighbourhood pass must beat the scalar batched
    sweep by ≥5× on the 50-task benchmark graph — the acceptance bar of
    the vectorized kernel-backend PR.

    Cross-checks entry-for-entry agreement first, so the speed-up is not
    bought with a different answer.
    """
    scalar = DeltaAnalyzer(mapping, backend="python")
    vector = DeltaAnalyzer(mapping, backend="numpy")
    names = graph.task_names()
    n_pes = platform.n_pes

    worst, nviol = vector.score_move_matrix()
    for i, name in enumerate(names):
        for pe, score in enumerate(scalar.score_moves(name)):
            assert worst[i, pe] == score.period
            assert nviol[i, pe] == score.n_violations

    def time_best_of(fn, repeats=10):
        fn()  # warm caches outside the timed region
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    scalar_time = time_best_of(lambda: _batched_sweep(scalar, names))
    vector_time = time_best_of(vector.score_move_matrix)
    if os.environ.get("REPRO_BENCH_NO_TIMING_ASSERT"):
        return  # noisy shared runners: correctness above still verified
    speedup = scalar_time / vector_time
    assert speedup >= 5.0, (
        f"vectorized neighbourhood scoring is only {speedup:.1f}x faster "
        f"than the scalar batched sweep ({vector_time * 1e3:.2f} ms vs "
        f"{scalar_time * 1e3:.2f} ms for {len(names) * n_pes} candidates) "
        "on the 50-task benchmark graph; the vectorized-backend contract "
        "is broken"
    )
