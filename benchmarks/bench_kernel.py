"""Compiled-kernel benchmarks: batched neighbourhood scoring vs per-candidate.

The compiled-kernel PR rewired ``DeltaAnalyzer`` onto integer-indexed
graph arrays (:mod:`repro.steady_state.compiled`) and added the batched
``score_moves`` / ``evaluate_moves`` / ``best_move`` API that every
neighbourhood scan (local search, tabu rounds, GA mutation, the online
runtime's admission and budgeted descent) now uses.  These benches pin
the two claims down on the paper's 50-task benchmark graph:

* the pytest-benchmark timings feed the CI ``benchmark-smoke``
  regression gate (compared against ``benchmarks/BENCH_baseline.json``
  with ``--benchmark-compare-fail=mean:25%``, exactly like
  ``bench_delta.py``);
* ``test_batched_speedup_guard`` **fails** if scoring the full move
  neighbourhood through ``score_moves`` is less than 3× faster than the
  equivalent per-candidate ``score_move`` loop — the acceptance bar of
  the compiled-kernel PR (the measured ratio has headroom above it; see
  ``benchmarks/profile_delta.py`` to see where the time goes);
* ``test_vectorized_speedup_guard`` **fails** if the numpy backend's
  whole-neighbourhood ``score_move_matrix`` pass is less than 5× faster
  than the scalar batched sweep — the acceptance bar of the vectorized
  kernel-backend PR;
* ``test_native_md_scoring_speedup_guard`` /
  ``test_native_apply_speedup_guard`` **fail** if the compiled
  extension (``backend="cython"``) is less than 2× faster than the best
  existing backend on mapping-dependent-mode neighbourhood scoring, or
  less than 1.5× faster on the apply/resync commit path — the
  acceptance bars of the compiled-extension PR;
* ``test_instrumentation_overhead_guard`` **fails** if the metrics
  layer breaks its cost contract on the batched-scoring sweep:
  disabled instrumentation must stay ≤2% (the gate cost measured
  directly) and enabled instrumentation ≤10% — the acceptance bars of
  the observability PR.  All guards skip their timing assertion (never
  the correctness cross-check) under ``REPRO_BENCH_NO_TIMING_ASSERT=1``;
  nightly CI runs them with the assertion armed.

The batch-API benches parametrize over ``available_backends()``, so a
build with the compiled extension reports ``[cython]`` timings next to
``[python]`` / ``[numpy]`` without any list to keep in sync.

Run explicitly (benchmarks are not collected by the default test run)::

    PYTHONPATH=src python -m pytest benchmarks/bench_kernel.py -q

Refreshing the baseline: rerun together with the delta benches on the
reference machine, ``PYTHONPATH=src python -m pytest
benchmarks/bench_delta.py benchmarks/bench_kernel.py -q
--benchmark-json=benchmarks/BENCH_baseline.json``, and commit the file
(or download the ``benchmark-results`` artifact of a green CI run).
"""

import os
import random
import time

import pytest

from repro.generator import random_graph_1
from repro.heuristics import greedy_cpu
from repro.platform import CellPlatform
from repro.steady_state import (
    DeltaAnalyzer,
    available_backends,
    cython_available,
    make_objective,
    numpy_available,
)

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy backend unavailable"
)
needs_cython = pytest.mark.skipif(
    not cython_available(), reason="compiled extension not built"
)


def _time_best_of(fn, repeats=10):
    fn()  # warm caches outside the timed region
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def graph():
    return random_graph_1()


@pytest.fixture(scope="module")
def platform():
    return CellPlatform.qs22()


@pytest.fixture(scope="module")
def mapping(graph, platform):
    return greedy_cpu(graph, platform)


def _batched_sweep(state, names):
    """Full move neighbourhood through the batched kernel."""
    total = 0.0
    for name in names:
        for score in state.score_moves(name):
            total += score.period
    return total


def _scalar_sweep(state, names, n_pes):
    """The same neighbourhood, one ``score_move`` delta per candidate."""
    total = 0.0
    for name in names:
        for pe in range(n_pes):
            total += state.score_move(name, pe).period
    return total


@pytest.mark.benchmark(group="kernel")
def test_score_moves_full_neighbourhood(benchmark, graph, platform, mapping):
    """Batched sweep: one shared precomputation per task, O(1) per PE."""
    state = DeltaAnalyzer(mapping)
    names = graph.task_names()
    assert benchmark(_batched_sweep, state, names) > 0


@pytest.mark.benchmark(group="kernel")
def test_score_move_per_candidate(benchmark, graph, platform, mapping):
    """Reference loop: a fresh single-candidate scoring per (task, PE)."""
    state = DeltaAnalyzer(mapping)
    names = graph.task_names()
    assert benchmark(_scalar_sweep, state, names, platform.n_pes) > 0


@pytest.mark.benchmark(group="kernel")
def test_best_move_scan(benchmark, graph, platform, mapping):
    """One ``best_move`` pass — the budgeted-descent/admission primitive."""
    state = DeltaAnalyzer(mapping)
    obj = make_objective("period", graph)

    def scan():
        return state.best_move(objective=obj)

    benchmark(scan)


@pytest.mark.benchmark(group="kernel")
def test_evaluate_moves_objective(benchmark, graph, platform, mapping):
    """Objective-threaded batched sweep (the metaheuristics' inner loop)."""
    state = DeltaAnalyzer(mapping)
    names = graph.task_names()
    obj = make_objective("period", graph)

    def sweep():
        total = 0.0
        for name in names:
            for score in state.evaluate_moves(name, objective=obj):
                total += score.value
        return total

    assert benchmark(sweep) > 0


def test_batched_speedup_guard(graph, platform, mapping):
    """`score_moves` must sweep the full neighbourhood ≥3× faster than a
    per-candidate `score_move` loop — the compiled-kernel acceptance bar.

    Also cross-checks that the two paths agree verdict for verdict, so
    the speed-up is not bought with a different answer.

    Pinned to ``backend="python"``: under ``auto`` the compiled
    extension accelerates the per-candidate loop itself, which is a
    different (and better) story than the batching contract this guard
    protects.
    """
    state = DeltaAnalyzer(mapping, backend="python")
    names = graph.task_names()
    n_pes = platform.n_pes

    for name in names:
        batched = state.score_moves(name)
        for pe in range(n_pes):
            assert batched[pe] == state.score_move(name, pe)

    scalar_time = _time_best_of(lambda: _scalar_sweep(state, names, n_pes))
    batched_time = _time_best_of(lambda: _batched_sweep(state, names))
    if os.environ.get("REPRO_BENCH_NO_TIMING_ASSERT"):
        return  # noisy shared runners: correctness above still verified
    speedup = scalar_time / batched_time
    assert speedup >= 3.0, (
        f"batched neighbourhood scoring is only {speedup:.1f}x faster "
        f"than the per-candidate loop ({batched_time * 1e3:.2f} ms vs "
        f"{scalar_time * 1e3:.2f} ms for {len(names) * n_pes} candidates) "
        "on the 50-task benchmark graph; the compiled-kernel contract is "
        "broken"
    )


# ---------------------------------------------------------------------- #
# Batch APIs under every available backend (python / numpy / cython)


@pytest.fixture(scope="module", params=available_backends())
def backend_state(request, mapping):
    return DeltaAnalyzer(mapping, backend=request.param)


@pytest.mark.benchmark(group="kernel-backend")
def test_score_move_matrix_backend(benchmark, backend_state):
    """Whole move neighbourhood in one (tasks × PEs) matrix pass."""
    worst, _ = benchmark(backend_state.score_move_matrix)
    assert float(worst[0][0]) > 0


@pytest.mark.benchmark(group="kernel-backend")
def test_evaluate_all_moves_backend(benchmark, graph, backend_state):
    """Matrix pass plus the per-candidate ObjectiveScore assembly."""
    obj = make_objective("period", graph)
    rows = benchmark(backend_state.evaluate_all_moves, objective=obj)
    assert rows[0][0].period > 0


@pytest.mark.benchmark(group="kernel-backend")
def test_score_swaps_backend(benchmark, graph, backend_state):
    """Pairwise swap scoring over every distinct-PE task pair."""
    names = graph.task_names()
    pairs = [
        (a, b)
        for i, a in enumerate(names)
        for b in names[i + 1 :]
        if backend_state.pe_of(a) != backend_state.pe_of(b)
    ]
    scores = benchmark(backend_state.score_swaps, pairs)
    assert len(scores) == len(pairs)


@pytest.mark.benchmark(group="kernel-backend")
def test_score_assignments_backend(benchmark, graph, platform, backend_state):
    """Population pass: 64 whole candidate mappings at once (GA's loop)."""
    rng = random.Random(0)
    names = graph.task_names()
    assignments = [
        {name: rng.randrange(platform.n_pes) for name in names}
        for _ in range(64)
    ]
    scores = benchmark(backend_state.score_assignments, assignments)
    assert len(scores) == 64


@pytest.mark.benchmark(group="kernel-backend")
def test_best_move_scan_backend(benchmark, graph, backend_state):
    """`best_move` through each backend's fastest available path."""
    obj = make_objective("period", graph)
    benchmark(backend_state.best_move, objective=obj)


@needs_numpy
def test_vectorized_speedup_guard(graph, platform, mapping):
    """The numpy whole-neighbourhood pass must beat the scalar batched
    sweep by ≥5× on the 50-task benchmark graph — the acceptance bar of
    the vectorized kernel-backend PR.

    Cross-checks entry-for-entry agreement first, so the speed-up is not
    bought with a different answer.
    """
    scalar = DeltaAnalyzer(mapping, backend="python")
    vector = DeltaAnalyzer(mapping, backend="numpy")
    names = graph.task_names()
    n_pes = platform.n_pes

    worst, nviol = vector.score_move_matrix()
    for i, name in enumerate(names):
        for pe, score in enumerate(scalar.score_moves(name)):
            assert worst[i, pe] == score.period
            assert nviol[i, pe] == score.n_violations

    def time_best_of(fn, repeats=10):
        fn()  # warm caches outside the timed region
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    scalar_time = _time_best_of(lambda: _batched_sweep(scalar, names))
    vector_time = _time_best_of(vector.score_move_matrix)
    if os.environ.get("REPRO_BENCH_NO_TIMING_ASSERT"):
        return  # noisy shared runners: correctness above still verified
    speedup = scalar_time / vector_time
    assert speedup >= 5.0, (
        f"vectorized neighbourhood scoring is only {speedup:.1f}x faster "
        f"than the scalar batched sweep ({vector_time * 1e3:.2f} ms vs "
        f"{scalar_time * 1e3:.2f} ms for {len(names) * n_pes} candidates) "
        "on the 50-task benchmark graph; the vectorized-backend contract "
        "is broken"
    )


# ---------------------------------------------------------------------- #
# Compiled extension (cython backend) guards


def _existing_backends():
    """Backends predating the compiled extension (its speed baselines)."""
    return [b for b in available_backends() if b != "cython"]


@needs_cython
def test_native_md_scoring_speedup_guard(graph, mapping):
    """The compiled extension must sweep the full move neighbourhood in
    the mapping-dependent buffer modes ≥2× faster than the best existing
    backend — the acceptance bar of the compiled-extension PR.

    The mapping-dependent modes are where the python/numpy backends fall
    back to the scalar incremental worklist, so this is the path the
    extension was built for.  Cross-checks verdict-for-verdict agreement
    first, so the speed-up is not bought with a different answer.
    """
    names = graph.task_names()
    for elide, merge in [(True, False), (False, True), (True, True)]:
        kwargs = dict(elide_local_comm=elide, merge_same_pe_buffers=merge)
        native = DeltaAnalyzer(mapping, backend="cython", **kwargs)
        baselines = {
            b: DeltaAnalyzer(mapping, backend=b, **kwargs)
            for b in _existing_backends()
        }
        for name in names:
            expected = baselines["python"].score_moves(name)
            assert native.score_moves(name) == expected
        best_existing = min(
            _time_best_of(lambda s=s: _batched_sweep(s, names))
            for s in baselines.values()
        )
        native_time = _time_best_of(lambda: _batched_sweep(native, names))
        if os.environ.get("REPRO_BENCH_NO_TIMING_ASSERT"):
            continue  # noisy shared runners: correctness still verified
        speedup = best_existing / native_time
        assert speedup >= 2.0, (
            f"native mapping-dependent scoring (elide={elide}, "
            f"merge={merge}) is only {speedup:.1f}x faster than the best "
            f"existing backend ({native_time * 1e3:.2f} ms vs "
            f"{best_existing * 1e3:.2f} ms); the compiled-extension "
            "contract is broken"
        )


def _apply_chain(state, moves, resync_every=256):
    """2000-move apply/resync churn: the runtime's commit-path shape."""
    for i, (name, pe) in enumerate(moves):
        state.apply_move(name, pe)
        if (i + 1) % resync_every == 0:
            state.resync()
    state.resync()
    return state.snapshot()


@needs_cython
def test_native_apply_speedup_guard(graph, platform, mapping):
    """The compiled extension must run the apply/resync commit path
    ≥1.5× faster than the best existing backend — the second acceptance
    bar of the compiled-extension PR.

    Cross-checks that every backend lands on the same snapshot after the
    full churn, so the speed-up is not bought with state drift.
    """
    rng = random.Random(7)
    names = graph.task_names()
    moves = [
        (rng.choice(names), rng.randrange(platform.n_pes))
        for _ in range(2000)
    ]

    def fresh(backend):
        return DeltaAnalyzer(mapping, backend=backend)

    reference = _apply_chain(fresh("python"), moves)
    assert _apply_chain(fresh("cython"), moves) == reference
    if numpy_available():
        assert _apply_chain(fresh("numpy"), moves) == reference

    best_existing = min(
        _time_best_of(lambda b=b: _apply_chain(fresh(b), moves), repeats=5)
        for b in _existing_backends()
    )
    native_time = _time_best_of(
        lambda: _apply_chain(fresh("cython"), moves), repeats=5
    )
    if os.environ.get("REPRO_BENCH_NO_TIMING_ASSERT"):
        return  # noisy shared runners: correctness above still verified
    speedup = best_existing / native_time
    assert speedup >= 1.5, (
        f"native apply/resync is only {speedup:.1f}x faster than the "
        f"best existing backend ({native_time * 1e3:.2f} ms vs "
        f"{best_existing * 1e3:.2f} ms for {len(moves)} applies); the "
        "compiled-extension contract is broken"
    )


# ---------------------------------------------------------------------- #
# Instrumentation overhead guard (the observability PR's acceptance bar)


def test_instrumentation_overhead_guard(graph, platform, mapping):
    """Instrumentation must be ≈ free when disabled and cheap when
    enabled on the 50-task batched-scoring bench — the acceptance bars
    of the observability PR:

    * **disabled ≤2%** — the per-call cost of the disabled gate (one
      module-global read and a ``None`` branch), times the number of
      instrumented call sites a sweep crosses, must stay under 2% of
      the sweep itself.  Measured on the gate primitive directly, not
      by diffing two sweep timings — a 2% delta between two runs of the
      same code is indistinguishable from noise, the gate cost is not;
    * **enabled ≤10%** — a sweep with a live registry must stay within
      1.10× of the uninstrumented sweep.

    The correctness cross-check (metrics never change a verdict, and the
    counters balance the candidate count exactly) always runs; the two
    timing assertions respect ``REPRO_BENCH_NO_TIMING_ASSERT`` like
    every other guard here.
    """
    from repro.obs import metrics

    state = DeltaAnalyzer(mapping)
    names = graph.task_names()
    n_pes = platform.n_pes

    # Correctness cross-check: always on.
    metrics.disable()
    expected = {name: state.score_moves(name) for name in names}
    registry = metrics.enable(metrics.MetricsRegistry())
    try:
        for name in names:
            assert state.score_moves(name) == expected[name], (
                "enabling metrics changed a scoring verdict"
            )
    finally:
        metrics.disable()
    assert registry.counters["moves_scored"] == len(names) * n_pes, (
        "moves_scored disagrees with the number of candidates swept"
    )

    t_off = _time_best_of(lambda: _batched_sweep(state, names))
    metrics.enable(metrics.MetricsRegistry())
    try:
        t_on = _time_best_of(lambda: _batched_sweep(state, names))
    finally:
        metrics.disable()

    # The disabled gate, timed in isolation: the exact per-call check
    # every instrumented hot path performs when metrics are off.
    n_gate = 100_000

    def gate_loop():
        for _ in range(n_gate):
            if metrics.REGISTRY is not None:  # pragma: no cover
                raise AssertionError("registry left enabled")

    gate_cost = _time_best_of(gate_loop) / n_gate
    # One gate per score_moves call (the batch API amortizes the per-PE
    # candidates behind a single counter update).
    n_sites = len(names)

    if os.environ.get("REPRO_BENCH_NO_TIMING_ASSERT"):
        return  # noisy shared runners: correctness above still verified
    disabled_share = gate_cost * n_sites / t_off
    assert disabled_share <= 0.02, (
        f"the disabled instrumentation gate costs {gate_cost * 1e9:.0f} ns "
        f"per call — {100 * disabled_share:.2f}% of the "
        f"{t_off * 1e3:.2f} ms batched sweep across {n_sites} call sites; "
        "the disabled-≈-free contract is broken"
    )
    overhead = t_on / t_off
    assert overhead <= 1.10, (
        f"the batched sweep with metrics enabled takes {overhead:.2f}x "
        f"the uninstrumented sweep ({t_on * 1e3:.2f} ms vs "
        f"{t_off * 1e3:.2f} ms); the enabled-≤10% contract is broken"
    )
