"""Micro-benchmarks of the substrates (regression tracking).

These time the pieces the experiment benches compose: the simulator's
event loop, the max-min allocator, the heuristics, the analytic model and
the generator.  Unlike the ``fig*`` benches they run several rounds, so
pytest-benchmark statistics are meaningful.
"""

import os
import random
import time

import pytest

from repro.generator import assign_costs, random_graph_1, random_topology
from repro.heuristics import critical_path_mapping, greedy_cpu, greedy_mem, local_search
from repro.platform import CellPlatform
from repro.simulator import FlowNetwork, SimConfig, simulate
from repro.steady_state import DeltaAnalyzer, analyze, build_schedule


@pytest.fixture(scope="module")
def graph():
    return random_graph_1()


@pytest.fixture(scope="module")
def platform():
    return CellPlatform.qs22()


@pytest.fixture(scope="module")
def mapping(graph, platform):
    return greedy_cpu(graph, platform)


@pytest.mark.benchmark(group="components")
def test_simulator_event_rate(benchmark, mapping):
    """Simulate 200 instances of the 50-task graph (≈10k compute events)."""
    result = benchmark(simulate, mapping, 200, SimConfig.realistic())
    assert result.n_instances == 200


@pytest.mark.benchmark(group="components")
def test_analytic_model(benchmark, mapping):
    analysis = benchmark(analyze, mapping)
    assert analysis.period > 0


@pytest.mark.benchmark(group="components")
def test_schedule_construction(benchmark, mapping):
    schedule = benchmark(build_schedule, mapping)
    assert schedule.period_length > 0


@pytest.mark.benchmark(group="components")
@pytest.mark.parametrize(
    "heuristic", [greedy_cpu, greedy_mem, critical_path_mapping],
    ids=["greedy_cpu", "greedy_mem", "critical_path"],
)
def test_heuristics(benchmark, graph, platform, heuristic):
    mapping = benchmark(heuristic, graph, platform)
    assert mapping.n_tasks_on_spes() >= 0


@pytest.mark.benchmark(group="local-search")
def test_local_search_full_analyze(benchmark, mapping):
    """Seed evaluation path: a full O(V+E) analyze() per candidate."""
    refined = benchmark.pedantic(
        local_search,
        args=(mapping,),
        kwargs={"max_rounds": 2, "use_delta": False},
        rounds=3,
        iterations=1,
    )
    assert analyze(refined).feasible


@pytest.mark.benchmark(group="local-search")
def test_local_search_delta(benchmark, mapping):
    """Delta evaluation path: O(deg) per candidate via DeltaAnalyzer."""
    refined = benchmark.pedantic(
        local_search,
        args=(mapping,),
        kwargs={"max_rounds": 2, "use_delta": True},
        rounds=3,
        iterations=1,
    )
    assert analyze(refined).feasible


def test_local_search_delta_speedup(mapping):
    """Acceptance: delta path >= 10x faster, equal-or-better period.

    Timed directly (not via pytest-benchmark) so the ratio is asserted,
    not just recorded, on the paper's 50-task random graph 1 / QS22 case.
    Best-of-3 per path: the minimum is robust to scheduler noise.  On
    shared CI runners (REPRO_BENCH_NO_TIMING_ASSERT=1) only the
    functional half — equal-or-better period — is asserted; the ~15x
    margin over the 10x threshold is not worth intermittent CI red.
    """

    def best_of(n, use_delta):
        times, results = [], []
        for _ in range(n):
            start = time.perf_counter()
            results.append(local_search(mapping, max_rounds=2, use_delta=use_delta))
            times.append(time.perf_counter() - start)
        return min(times), results[-1]

    # Warm both paths once (memoized buffer_requirements, allocators).
    local_search(mapping, max_rounds=1, use_delta=True)
    local_search(mapping, max_rounds=1, use_delta=False)

    t_delta, fast = best_of(3, use_delta=True)
    t_full, slow = best_of(3, use_delta=False)

    # Equal-or-better period, with ulp headroom: on a near-tie the delta
    # and full paths may pick different (equally good) moves.
    assert analyze(fast).period <= analyze(slow).period * (1 + 1e-9)
    if os.environ.get("REPRO_BENCH_NO_TIMING_ASSERT"):
        return
    assert t_full >= 10.0 * t_delta, (
        f"delta path only {t_full / t_delta:.1f}x faster "
        f"({t_delta * 1e3:.1f} ms vs {t_full * 1e3:.1f} ms)"
    )


@pytest.mark.benchmark(group="components")
def test_score_move_throughput(benchmark, mapping):
    """Scan the full move neighbourhood (~450 scored candidates)."""
    state = DeltaAnalyzer(mapping)
    names = mapping.graph.task_names()
    n_pes = mapping.platform.n_pes

    def scan():
        best = None
        for name in names:
            for pe in range(n_pes):
                score = state.score_move(name, pe)
                if score.feasible and (best is None or score.period < best):
                    best = score.period
        return best

    best = benchmark(scan)
    assert best is not None and best > 0


@pytest.mark.benchmark(group="components")
def test_generator(benchmark):
    def build():
        topo = random_topology(94, fat=0.45, density=0.18, jump=2, seed=1)
        return assign_costs(topo, ccr=0.775, seed=1)

    graph = benchmark(build)
    assert graph.n_tasks == 94


@pytest.mark.benchmark(group="components")
def test_maxmin_allocator(benchmark):
    rng = random.Random(7)
    caps = {}
    for pe in range(9):
        caps[("out", pe)] = 25_000.0
        caps[("in", pe)] = 25_000.0
    net = FlowNetwork(caps)
    for _ in range(40):
        net.start_flow(
            ("out", rng.randrange(9)), ("in", rng.randrange(9)), 1000.0
        )
    benchmark(net.allocate)
    net.check_capacities()
