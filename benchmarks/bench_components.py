"""Micro-benchmarks of the substrates (regression tracking).

These time the pieces the experiment benches compose: the simulator's
event loop, the max-min allocator, the heuristics, the analytic model and
the generator.  Unlike the ``fig*`` benches they run several rounds, so
pytest-benchmark statistics are meaningful.
"""

import random

import pytest

from repro.generator import assign_costs, random_graph_1, random_topology
from repro.heuristics import critical_path_mapping, greedy_cpu, greedy_mem
from repro.platform import CellPlatform
from repro.simulator import FlowNetwork, SimConfig, simulate
from repro.steady_state import Mapping, analyze, build_schedule


@pytest.fixture(scope="module")
def graph():
    return random_graph_1()


@pytest.fixture(scope="module")
def platform():
    return CellPlatform.qs22()


@pytest.fixture(scope="module")
def mapping(graph, platform):
    return greedy_cpu(graph, platform)


@pytest.mark.benchmark(group="components")
def test_simulator_event_rate(benchmark, mapping):
    """Simulate 200 instances of the 50-task graph (≈10k compute events)."""
    result = benchmark(simulate, mapping, 200, SimConfig.realistic())
    assert result.n_instances == 200


@pytest.mark.benchmark(group="components")
def test_analytic_model(benchmark, mapping):
    analysis = benchmark(analyze, mapping)
    assert analysis.period > 0


@pytest.mark.benchmark(group="components")
def test_schedule_construction(benchmark, mapping):
    schedule = benchmark(build_schedule, mapping)
    assert schedule.period_length > 0


@pytest.mark.benchmark(group="components")
@pytest.mark.parametrize(
    "heuristic", [greedy_cpu, greedy_mem, critical_path_mapping],
    ids=["greedy_cpu", "greedy_mem", "critical_path"],
)
def test_heuristics(benchmark, graph, platform, heuristic):
    mapping = benchmark(heuristic, graph, platform)
    assert mapping.n_tasks_on_spes() >= 0


@pytest.mark.benchmark(group="components")
def test_generator(benchmark):
    def build():
        topo = random_topology(94, fat=0.45, density=0.18, jump=2, seed=1)
        return assign_costs(topo, ccr=0.775, seed=1)

    graph = benchmark(build)
    assert graph.n_tasks == 94


@pytest.mark.benchmark(group="components")
def test_maxmin_allocator(benchmark):
    rng = random.Random(7)
    caps = {}
    for pe in range(9):
        caps[("out", pe)] = 25_000.0
        caps[("in", pe)] = 25_000.0
    net = FlowNetwork(caps)
    for _ in range(40):
        net.start_flow(
            ("out", rng.randrange(9)), ("in", rng.randrange(9)), 1000.0
        )
    benchmark(net.allocate)
    net.check_capacities()
