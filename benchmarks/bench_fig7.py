"""Benchmarks regenerating Fig. 7a/7b/7c — speed-up vs number of SPEs.

One benchmark per graph (the paper's three sub-figures).  Artefacts:
``fig7_<graph>.csv`` and ``fig7_<graph>.txt`` in ``benchmarks/results/``.

Expected shape (paper §6.4.2): the MILP series climbs to ≈2–3.7× at 8
SPEs and dominates; the greedy heuristics trail it and plateau early.
"""

import pytest

from repro.experiments import ascii_plot, to_csv
from repro.experiments.fig7_speedup import run_one
from repro.generator import random_graph_1, random_graph_2, random_graph_3

from conftest import N_INSTANCES, save_artifact

GRAPHS = {
    "graph1": random_graph_1,
    "graph2": random_graph_2,
    "graph3": random_graph_3,
}


@pytest.mark.benchmark(group="fig7")
@pytest.mark.parametrize("graph_name", list(GRAPHS))
def test_fig7_speedup(benchmark, results_dir, graph_name):
    graph = GRAPHS[graph_name]()
    result = benchmark.pedantic(
        run_one,
        kwargs=dict(graph=graph, n_instances=N_INSTANCES),
        rounds=1,
        iterations=1,
    )
    save_artifact(
        results_dir, f"fig7_{graph_name}.csv", to_csv(result.points)
    )
    text = result.table() + "\n" + ascii_plot(
        result.points, x_label="number of SPEs", y_label="speed-up"
    )
    save_artifact(results_dir, f"fig7_{graph_name}.txt", text)

    series = result.series()
    milp = dict(series["milp"])
    benchmark.extra_info["milp_speedup_8spe"] = milp[8]
    benchmark.extra_info["greedy_cpu_8spe"] = dict(series["greedy_cpu"])[8]
    benchmark.extra_info["greedy_mem_8spe"] = dict(series["greedy_mem"])[8]

    # Shape assertions from the paper:
    # (a) with 0 SPEs everything is the PPE-only mapping;
    assert milp[0] == pytest.approx(1.0, abs=0.1)
    # (b) the MILP scales with SPEs...
    assert milp[8] > 1.8
    assert milp[8] >= milp[4] * 0.95 >= milp[0] * 0.95
    # (c) ...and dominates both heuristics at full platform width.
    for heuristic in ("greedy_cpu", "greedy_mem"):
        assert milp[8] >= dict(series[heuristic])[8] - 0.05
