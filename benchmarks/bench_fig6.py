"""Benchmark regenerating Fig. 6 — ramp-up to steady state (§6.4.1).

Artefacts written to ``benchmarks/results/``:
* ``fig6_curve.csv`` — the experimental throughput curve + theoretical line;
* ``fig6_summary.txt`` — the table and the steady/predicted ratio (the
  paper reports ≈95 %).
"""

import pytest

from repro.experiments import ascii_plot, to_csv
from repro.experiments.fig6_rampup import run

from conftest import N_INSTANCES, save_artifact


@pytest.mark.benchmark(group="fig6")
def test_fig6_rampup(benchmark, results_dir):
    # Fig. 6 plots 10 000 instances; the curve flattens well before 3×
    # the pipeline depth, so N_INSTANCES (default 1000) already shows the
    # plateau.  Scale up via REPRO_BENCH_INSTANCES for the full figure.
    result = benchmark.pedantic(
        run,
        kwargs=dict(n_instances=max(N_INSTANCES, 1500)),
        rounds=1,
        iterations=1,
    )
    save_artifact(results_dir, "fig6_curve.csv", to_csv(result.points()))
    summary = "\n".join(
        [
            f"Figure 6 — {result.graph_name} (MILP mapping, 8 SPEs)",
            ascii_plot(
                result.points(),
                x_label="instances processed",
                y_label="throughput (inst/s)",
            ),
            result.table(),
        ]
    )
    save_artifact(results_dir, "fig6_summary.txt", summary)
    benchmark.extra_info["steady_inst_per_s"] = result.steady
    benchmark.extra_info["theoretical_inst_per_s"] = result.theoretical
    benchmark.extra_info["efficiency"] = result.efficiency
    # The §6.4.1 claim: measured steady state ≈ 95 % of the LP prediction.
    assert 0.85 <= result.efficiency <= 1.0
    # And the curve must actually ramp up to its plateau.
    assert result.curve[0][1] < result.steady
