"""Scheduler-service benchmarks: serving-loop overhead and latency.

The :class:`~repro.runtime.service.SchedulerService` promises that the
asyncio serving loop adds queueing, backpressure and durability *around*
the scheduler without changing a single decision, and that its overhead
stays small next to the admission work itself:

* ``test_service_equivalence_overhead`` replays the same seeded
  scenario offline and through the service (queue sized to the
  timeline, so no shedding) and **fails** if the reports differ or the
  service takes more than 5× the offline wall time — the serving loop
  must not dominate the decisions it serves.
* ``test_service_latency_profile`` drives the service with the metrics
  registry enabled and reports the **p50/p99 admission latency** (from
  the :mod:`repro.obs` ``admission_latency`` histogram), the p50/p99
  end-to-end service latency (``service_latency``: queueing included),
  and **admissions/sec** over the wall clock.
* ``test_durable_service_overhead`` measures what the write-ahead
  journal + periodic checkpoints cost on top of the plain service
  (``fsync=False``, so it prices serialization, not the disk).

Run explicitly (benchmarks are not collected by the default test run)::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q -s
"""

import asyncio
import time

import pytest

from repro.obs import metrics
from repro.platform import CellPlatform
from repro.runtime import (
    DurableScheduler,
    OnlineScheduler,
    ScenarioGenerator,
    SchedulerService,
    play,
)

N_EVENTS = 24


@pytest.fixture(scope="module")
def platform():
    return CellPlatform.qs22()


def make_events(platform, n_events=N_EVENTS):
    return ScenarioGenerator(platform, seed=5, load=2.5).generate(n_events)


def make_scheduler(platform):
    return OnlineScheduler(platform, migration_budget=3, retry_limit=1)


async def drive(service, events):
    await service.start()
    responses = await play(service, events)
    report = await service.stop()
    return responses, report


def run_service(platform, events, **service_knobs):
    service = SchedulerService(
        make_scheduler(platform),
        admission_batch=4,
        max_queue=len(events) + 1,
        high_watermark=len(events) + 1,
        **service_knobs,
    )
    t0 = time.perf_counter()
    responses, report = asyncio.run(drive(service, events))
    wall = time.perf_counter() - t0
    return responses, report, wall


@pytest.mark.benchmark(group="service")
def test_service_equivalence_overhead(platform):
    """The serving loop changes nothing and costs little."""
    events = make_events(platform)
    t0 = time.perf_counter()
    baseline = make_scheduler(platform).run(events)
    offline = time.perf_counter() - t0
    responses, report, wall = run_service(platform, events)
    assert report == baseline
    assert all(r.status == "ok" for r in responses)
    overhead = wall / offline if offline > 0 else float("inf")
    print(
        f"\nservice vs offline: {1e3 * offline:.1f} ms offline, "
        f"{1e3 * wall:.1f} ms served ({overhead:.2f}x)"
    )
    assert overhead < 5.0, (
        f"serving loop overhead {overhead:.2f}x exceeds the 5x budget "
        f"({1e3 * wall:.1f} ms vs {1e3 * offline:.1f} ms offline)"
    )


@pytest.mark.benchmark(group="service")
def test_service_latency_profile(platform):
    """p50/p99 admission + service latency and admissions/sec."""
    events = make_events(platform)
    registry = metrics.MetricsRegistry()
    metrics.enable(registry)
    try:
        responses, report, wall = run_service(platform, events)
    finally:
        metrics.disable()
    admission = registry.histograms.get("admission_latency")
    service_hist = registry.histograms.get("service_latency")
    assert admission is not None and admission.count > 0
    assert service_hist is not None
    assert service_hist.count == len(events)
    adm_per_sec = report.n_arrivals / wall if wall > 0 else 0.0
    print(
        f"\nadmission latency: p50 {1e3 * admission.quantile(0.5):.3f} ms, "
        f"p99 {1e3 * admission.quantile(0.99):.3f} ms "
        f"({admission.count} decisions)"
    )
    print(
        f"service latency:   p50 {1e3 * service_hist.quantile(0.5):.3f} ms, "
        f"p99 {1e3 * service_hist.quantile(0.99):.3f} ms "
        f"(queueing included)"
    )
    print(
        f"throughput:        {adm_per_sec:.0f} admissions/s "
        f"({len(events)} requests in {1e3 * wall:.1f} ms)"
    )
    # Quantiles are ordered and bounded by the recorded extremes.
    assert (
        admission.min
        <= admission.quantile(0.5)
        <= admission.quantile(0.99)
        <= admission.max
    )


@pytest.mark.benchmark(group="service")
def test_durable_service_overhead(platform, tmp_path):
    """Journal + checkpoints priced against the plain service."""
    events = make_events(platform)
    _, baseline, plain_wall = run_service(platform, events)
    journal = tmp_path / "bench.jsonl"
    checkpoint = tmp_path / "bench.json"
    _, report, durable_wall = run_service(
        platform,
        events,
        journal_path=journal,
        checkpoint_path=checkpoint,
        checkpoint_every=4,
        fsync=False,
    )
    assert report == baseline
    with DurableScheduler.recover(
        journal, checkpoint_path=checkpoint, fsync=False
    ) as recovered:
        assert recovered.scheduler.report() == report
    overhead = durable_wall / plain_wall if plain_wall > 0 else float("inf")
    print(
        f"\ndurable service: {1e3 * plain_wall:.1f} ms plain, "
        f"{1e3 * durable_wall:.1f} ms journaled ({overhead:.2f}x, "
        f"fsync off)"
    )
    assert overhead < 5.0, (
        f"durability overhead {overhead:.2f}x exceeds the 5x budget"
    )
