"""Benchmarks for the MILP itself: the §6 solve-time claim and ablations.

* ``test_solve_time_table`` — the paper's 18 linear programs (3 graphs × 6
  CCRs) at a 5 % gap; the paper reports < 60 s each (≈20 s typical) with
  CPLEX on 2009 hardware.  Artefact: ``milp_solve_times.txt``.
* ``test_beta_ablation`` — DESIGN.md's β-relaxation: continuous vs
  integral edge variables must agree on the objective.
* ``test_solve_single_graph`` — a repeatable single-solve timing for
  regression tracking (multiple rounds).
"""

import pytest

from repro.experiments.tables import (
    beta_ablation_table,
    format_solve_table,
    solve_time_table,
)
from repro.generator import random_graph_1
from repro.milp import solve_optimal_mapping
from repro.platform import CellPlatform

from conftest import save_artifact


@pytest.mark.benchmark(group="milp")
def test_solve_time_table(benchmark, results_dir):
    records = benchmark.pedantic(
        solve_time_table, rounds=1, iterations=1
    )
    text = format_solve_table(records)
    save_artifact(results_dir, "milp_solve_times.txt", text)
    worst = max(r.solve_time for r in records)
    over_paper_budget = sum(1 for r in records if r.solve_time >= 60.0)
    benchmark.extra_info["max_solve_time_s"] = round(worst, 2)
    benchmark.extra_info["n_programs"] = len(records)
    benchmark.extra_info["n_over_60s"] = over_paper_budget
    assert len(records) == 18
    # Every program returns a (gap- or limit-stopped) mapping within the
    # solver budget; how many beat the paper's 60 s figure is reported in
    # extra_info and EXPERIMENTS.md rather than hard-asserted — HiGHS and
    # CPLEX trade blows differently across instances.
    assert worst <= 95.0


@pytest.mark.benchmark(group="milp")
def test_beta_ablation(benchmark, results_dir):
    text = benchmark.pedantic(beta_ablation_table, rounds=1, iterations=1)
    save_artifact(results_dir, "milp_beta_ablation.txt", text)


@pytest.mark.benchmark(group="milp")
def test_solve_single_graph(benchmark):
    graph = random_graph_1()
    platform = CellPlatform.qs22()
    result = benchmark.pedantic(
        solve_optimal_mapping,
        args=(graph, platform),
        rounds=3,
        iterations=1,
    )
    assert result.period > 0
