"""Benchmarks for the implemented future-work extensions and model checks.

* ``test_dual_cell`` — scheduling across both Cells of the QS22 (the
  paper's future work): measures what the second chip buys on the 94-task
  graph.  Artefact: ``dual_cell.txt``.
* ``test_model_accuracy_serial_ablation`` — §2.1 assumes contention-free
  bounded-multiport communication; comparing the fair-sharing simulator
  against a serialised-interface one quantifies how much that assumption
  matters for MILP mappings (the paper argues: little).
"""

import pytest

from repro.generator import random_graph_1, random_graph_2
from repro.milp import solve_optimal_mapping
from repro.platform import CellPlatform
from repro.simulator import SimConfig, simulate
from repro.steady_state import Mapping, analyze

from conftest import N_INSTANCES, save_artifact


@pytest.mark.benchmark(group="extensions")
def test_dual_cell(benchmark, results_dir):
    graph = random_graph_2()
    config = SimConfig.realistic()
    n = min(N_INSTANCES, 600)

    def run():
        single = CellPlatform.qs22()
        dual = CellPlatform.qs22_dual()
        baseline = simulate(
            Mapping.all_on_ppe(graph, single), n, config
        ).steady_state_throughput()
        rows = []
        for label, platform in (("single", single), ("dual", dual)):
            result = solve_optimal_mapping(graph, platform, time_limit=120)
            rate = simulate(result.mapping, n, config).steady_state_throughput()
            links = analyze(result.mapping).link_loads
            rows.append((label, result.period, rate / baseline, links))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"dual-Cell extension on {graph.name} ({n} instances)"]
    for label, period, speedup, links in rows:
        link_txt = ", ".join(
            f"{ln.src_cell}->{ln.dst_cell}: {ln.time:.2f}µs" for ln in links
        ) or "unused"
        lines.append(
            f"  {label:>6}: T={period:9.1f} µs  speed-up {speedup:5.2f}x  "
            f"BIF {link_txt}"
        )
    save_artifact(results_dir, "dual_cell.txt", "\n".join(lines))
    single_speedup = rows[0][2]
    dual_speedup = rows[1][2]
    benchmark.extra_info["single"] = round(single_speedup, 2)
    benchmark.extra_info["dual"] = round(dual_speedup, 2)
    # The second chip must help a compute-bound 94-task graph.
    assert dual_speedup > single_speedup


@pytest.mark.benchmark(group="extensions")
def test_model_accuracy_serial_ablation(benchmark, results_dir):
    graph = random_graph_1()
    platform = CellPlatform.qs22()
    mapping = solve_optimal_mapping(graph, platform, time_limit=90).mapping
    n = min(N_INSTANCES, 800)

    def run():
        fair = simulate(mapping, n, SimConfig.ideal())
        serial = simulate(mapping, n, SimConfig(serial_comm=True))
        return fair.steady_state_throughput(), serial.steady_state_throughput()

    fair_rate, serial_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = serial_rate / fair_rate
    save_artifact(
        results_dir,
        "model_accuracy.txt",
        "\n".join(
            [
                "§2.1 model-accuracy check (MILP mapping, graph 1):",
                f"  bounded-multiport throughput : {fair_rate * 1e6:9.2f} inst/s",
                f"  serialised interfaces        : {serial_rate * 1e6:9.2f} inst/s",
                f"  ratio                        : {ratio:9.3f}",
                "  (≈1 ⇒ the contention-free assumption is harmless for",
                "   these workloads, as the paper claims)",
            ]
        ),
    )
    benchmark.extra_info["serial_over_fair"] = round(ratio, 4)
    # Transfers are tiny next to compute on this workload: the
    # communication model barely moves the needle.
    assert ratio == pytest.approx(1.0, abs=0.1)
