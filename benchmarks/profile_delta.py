"""cProfile helper for the delta-engine hot paths.

Answers "where does neighbourhood-search time actually go?" without
setting up a benchmark run — profile one of the three canonical
workloads on the paper's 50-task benchmark graph and print the top
functions by cumulative time:

``batched``
    Full move-neighbourhood sweeps through ``score_moves`` (the
    compiled-kernel hot path every search heuristic uses).
``scalar``
    The same sweeps through per-candidate ``score_move`` calls — the
    pre-batching access pattern, kept as the comparison basis of
    ``bench_kernel.py``'s ≥3× guard.
``apply``
    An apply-heavy random walk (the simulated-annealing profile),
    including the mapping-dependent buffer models.

``--backend`` pins the kernel backend (any name in
``available_backends()``, or ``auto``), so the same workload can be
profiled against the python, numpy, and compiled-extension paths.
``--trace`` additionally records the kernel spans of the profiled run
as a Chrome trace-event file (Perfetto / ``chrome://tracing``) — the
same instrumentation the online sweep's ``--trace`` flag uses, here as
a timeline view to complement the cProfile call-graph totals.

Usage (see the README "Performance architecture" section)::

    PYTHONPATH=src python benchmarks/profile_delta.py
    PYTHONPATH=src python benchmarks/profile_delta.py --mode scalar --rounds 50
    PYTHONPATH=src python benchmarks/profile_delta.py --mode apply --sort tottime
    PYTHONPATH=src python benchmarks/profile_delta.py --backend cython
    PYTHONPATH=src python benchmarks/profile_delta.py --trace delta.trace.json
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import random
from pathlib import Path

from repro.generator import random_graph_1
from repro.heuristics import greedy_cpu
from repro.obs import tracing
from repro.platform import CellPlatform
from repro.steady_state import DeltaAnalyzer, available_backends


def _state(backend: str, apply_modes: bool = False) -> DeltaAnalyzer:
    graph = random_graph_1()
    platform = CellPlatform.qs22()
    mapping = greedy_cpu(graph, platform)
    if apply_modes:
        return DeltaAnalyzer(
            mapping,
            elide_local_comm=True,
            merge_same_pe_buffers=True,
            backend=backend,
        )
    return DeltaAnalyzer(mapping, backend=backend)


def run_batched(rounds: int, backend: str) -> float:
    state = _state(backend)
    names = state.graph.task_names()
    total = 0.0
    for rnd in range(rounds):
        # The per-candidate kernels are counters-only hot paths (no
        # spans of their own), so the profile harness brackets each
        # full-neighbourhood sweep to give --trace a timeline.
        with tracing.span("profile:batched.round", round=rnd):
            for name in names:
                for score in state.score_moves(name):
                    total += score.period
    return total


def run_scalar(rounds: int, backend: str) -> float:
    state = _state(backend)
    names = state.graph.task_names()
    n_pes = state.platform.n_pes
    total = 0.0
    for rnd in range(rounds):
        with tracing.span("profile:scalar.round", round=rnd):
            for name in names:
                for pe in range(n_pes):
                    total += state.score_move(name, pe).period
    return total


def run_apply(rounds: int, backend: str) -> float:
    state = _state(backend, apply_modes=True)
    names = state.graph.task_names()
    n_pes = state.platform.n_pes
    rng = random.Random(0)
    for rnd in range(rounds):
        with tracing.span("profile:apply.round", round=rnd):
            for _ in range(100):
                state.apply_move(
                    names[rng.randrange(len(names))], rng.randrange(n_pes)
                )
    return state.period()


MODES = {"batched": run_batched, "scalar": run_scalar, "apply": run_apply}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=sorted(MODES), default="batched")
    parser.add_argument(
        "--rounds", type=int, default=20,
        help="full-neighbourhood sweeps (or ×100 applies) to profile",
    )
    parser.add_argument(
        "--sort", default="cumulative",
        help="pstats sort key (cumulative, tottime, ncalls, ...)",
    )
    parser.add_argument(
        "--limit", type=int, default=25, help="rows of the stats table"
    )
    parser.add_argument(
        "--backend",
        choices=(*available_backends(), "auto"),
        default="auto",
        help="kernel backend to profile (default: auto-detected best)",
    )
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="also write the run's kernel spans as Chrome trace-event "
        "JSON (load in Perfetto or chrome://tracing)",
    )
    args = parser.parse_args(argv)

    tracer = tracing.start(tracing.Tracer()) if args.trace else None
    profiler = cProfile.Profile()
    profiler.enable()
    MODES[args.mode](args.rounds, args.backend)
    profiler.disable()
    if tracer is not None:
        tracing.stop()
    stats = pstats.Stats(profiler)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.limit)
    if tracer is not None:
        Path(args.trace).write_text(tracer.to_json() + "\n")
        print(
            f"{len(tracer.events)} spans written to {args.trace} "
            "(load in Perfetto)"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
