"""Build hooks for the optional compiled kernel extension.

All package metadata lives in ``pyproject.toml``; this file exists only
to attach ``repro.steady_state._ckernel`` (the native kernel backend,
see ``src/repro/steady_state/_ckernel.c``) to the setuptools build — and
to make that attachment *optional*:

* no C compiler / broken toolchain → the build logs a notice and
  produces a pure-python install (the backend registry then reports
  ``cython`` as unavailable and ``auto`` falls back to numpy/python);
* ``REPRO_NO_EXTENSION=1`` in the environment → the extension is
  skipped up front (CI's forced no-extension leg, and an escape hatch
  for exotic platforms);
* the checked-in C file is the source of truth — building needs no
  Cython, only a C compiler (``python setup.py build_ext --inplace``
  for a source tree, or just ``pip install .``).

The failure-tolerant ``build_ext`` pattern is the standard one used by
projects shipping optional accelerators (cf. coverage.py, msgpack).
"""

import os

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext

try:  # distutils lives inside setuptools on modern pythons
    from setuptools.errors import BaseError as _BuildError
except ImportError:  # pragma: no cover - very old setuptools
    _BuildError = Exception


class optional_build_ext(build_ext):
    """``build_ext`` that degrades to a pure-python build on failure."""

    def run(self):
        try:
            super().run()
        except (_BuildError, OSError) as exc:
            self._skip(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except (_BuildError, OSError, ValueError) as exc:
            self._skip(exc)

    def _skip(self, exc):
        print(
            "\n*** Building the compiled kernel extension failed "
            f"({exc!r}).\n*** Installing pure-python: the 'cython' "
            "kernel backend will be unavailable;\n*** the scalar and "
            "numpy backends are unaffected.\n"
        )


ext_modules = []
if not os.environ.get("REPRO_NO_EXTENSION"):
    ext_modules.append(
        Extension(
            "repro.steady_state._ckernel",
            sources=["src/repro/steady_state/_ckernel.c"],
            optional=True,
        )
    )

setup(
    ext_modules=ext_modules,
    cmdclass={"build_ext": optional_build_ext},
)
