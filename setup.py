"""Thin setup.py shim.

The project metadata lives in ``pyproject.toml``; this file only enables
legacy editable installs (``pip install -e . --no-use-pep517``) in offline
environments that lack the ``wheel`` package required by PEP 660 builds.
"""

from setuptools import setup

setup()
