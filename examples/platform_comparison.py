#!/usr/bin/env python
"""PlayStation 3 vs QS22, and what each extra SPE buys (Fig. 7's question).

The paper ran the same experiments on a PS3 (6 usable SPEs) and a QS22
(8 SPEs) and found identical behaviour at equal SPE counts.  This example
verifies that claim on the simulator with the video pipeline, then sweeps
the SPE count to show the scaling curve of the MILP mapping.

Run:  python examples/platform_comparison.py
      python examples/platform_comparison.py --quick  (smaller pipeline,
                                              short stream, 0-2 SPE sweep —
                                              the mode the test suite runs)
"""

import sys

from repro import CellPlatform, Mapping, solve_optimal_mapping
from repro.apps import video_pipeline
from repro.simulator import SimConfig, simulate

N_INSTANCES = 800


def measured_rate(graph, platform, config, n_instances=N_INSTANCES):
    mapping = solve_optimal_mapping(graph, platform).mapping
    return simulate(mapping, n_instances, config).steady_state_throughput()


def main(quick: bool = False) -> None:
    if quick:
        graph, n_instances, spe_sweep = video_pipeline(n_stripes=2), 150, range(0, 3)
    else:
        graph, n_instances, spe_sweep = (
            video_pipeline(n_stripes=4),
            N_INSTANCES,
            range(0, 9),
        )
    config = SimConfig.realistic()

    # --- PS3 vs QS22 at the same SPE count (paper §6.4: identical) ------ #
    ps3 = CellPlatform.playstation3()
    qs22_6 = CellPlatform.qs22().with_spes(6)
    rate_ps3 = measured_rate(graph, ps3, config, n_instances)
    rate_qs22 = measured_rate(graph, qs22_6, config, n_instances)
    print("Same-SPE-count check (paper: results identical):")
    print(f"  PS3  (6 SPEs): {rate_ps3 * 1e6:9.1f} frames/s")
    print(f"  QS22 (6 SPEs): {rate_qs22 * 1e6:9.1f} frames/s")
    print(f"  ratio: {rate_ps3 / rate_qs22:.3f}")
    print()

    # --- SPE scaling on the QS22 (Fig. 7's x-axis) ---------------------- #
    base_platform = CellPlatform.qs22()
    baseline = simulate(
        Mapping.all_on_ppe(graph, base_platform), n_instances, config
    ).steady_state_throughput()
    print("MILP speed-up vs number of SPEs (QS22):")
    for n_spe in spe_sweep:
        rate = measured_rate(
            graph, base_platform.with_spes(n_spe), config, n_instances
        )
        bar = "#" * int(rate / baseline * 10)
        print(f"  {n_spe} SPEs: {rate / baseline:5.2f}x  {bar}")


if __name__ == "__main__":
    main(quick="--quick" in sys.argv[1:])
