#!/usr/bin/env python
"""The §6.4.3 mechanism, dissected: why speed-up collapses as CCR grows.

Sweeps the six CCR variants of the chain graph (random graph 3) and, for
each, reports what the MILP could do with the SPE local stores:

* how many tasks fit on SPEs (buffer pressure from the §4.2 windows),
* the resulting analytic speed-up,
* the measured speed-up on the simulator.

The three columns fall together: larger payloads → larger buffers → fewer
tasks off-loaded → "eventually, the best policy is to map all tasks to the
PPE" (paper, §6.4.3).

Run:  python examples/ccr_sweep.py
"""

from repro import CellPlatform, Mapping, solve_optimal_mapping, speedup
from repro.generator import PAPER_CCRS, ccr_variants
from repro.simulator import SimConfig, simulate
from repro.steady_state import spe_buffer_load

N_INSTANCES = 1000


def main() -> None:
    platform = CellPlatform.qs22()
    config = SimConfig.realistic()
    variants = ccr_variants(3)  # the 50-task chain

    print(f"{'CCR':>6}  {'tasks on SPEs':>13}  {'SPE buffer use':>14}  "
          f"{'analytic':>8}  {'measured':>8}")
    for ccr in PAPER_CCRS:
        graph = variants[ccr]
        result = solve_optimal_mapping(graph, platform, time_limit=90.0)
        mapping = result.mapping

        on_spes = mapping.n_tasks_on_spes()
        buffers = spe_buffer_load(mapping)
        used = sum(buffers.values())
        budget = platform.buffer_budget * platform.n_spe
        analytic = speedup(mapping)

        baseline = simulate(
            Mapping.all_on_ppe(graph, platform), N_INSTANCES, config
        )
        sim = simulate(mapping, N_INSTANCES, config)
        measured = (
            sim.steady_state_throughput() / baseline.steady_state_throughput()
        )
        print(
            f"{ccr:6.3f}  {on_spes:10d}/50  {used / budget * 100:13.1f}%  "
            f"{analytic:8.2f}  {measured:8.2f}"
        )


if __name__ == "__main__":
    main()
