#!/usr/bin/env python
"""Quickstart: map a streaming application on the Cell and measure it.

This walks the full pipeline of the paper in ~40 lines:

1. build a streaming task graph (one of the paper's random graphs);
2. compute the optimal mapping with the §5 mixed linear program;
3. compare against the §6.3 greedy heuristics;
4. execute everything on the discrete-event Cell simulator and report
   measured speed-ups, exactly like the paper's §6.4.

Run:  python examples/quickstart.py          (full, paper-scale)
      python examples/quickstart.py --quick  (small graph, short stream —
                                              the mode the test suite runs)
"""

import sys

from repro import CellPlatform, Mapping, analyze, solve_optimal_mapping
from repro.apps import audio_encoder
from repro.generator import random_graph_1
from repro.graph import graph_stats
from repro.heuristics import greedy_cpu, greedy_mem
from repro.simulator import SimConfig, simulate

N_INSTANCES = 1200


def main(quick: bool = False) -> None:
    if quick:
        graph, n_instances = audio_encoder(), 200  # 14 tasks, sub-second MILP
    else:
        graph, n_instances = random_graph_1(), N_INSTANCES  # 50 tasks (Fig. 5a)
    platform = CellPlatform.qs22()  # 1 PPE + 8 SPEs
    print(graph_stats(graph))
    print(platform)
    print()

    # --- the paper's contribution: the MILP mapping -------------------- #
    result = solve_optimal_mapping(graph, platform)
    print(result.report())
    print(result.mapping.summary())
    print()

    # --- measured comparison (the §6.4 protocol) ----------------------- #
    config = SimConfig.realistic()
    baseline = simulate(Mapping.all_on_ppe(graph, platform), n_instances, config)
    base_rate = baseline.steady_state_throughput()
    print(f"PPE-only reference: {base_rate * 1e6:8.2f} instances/s")

    for name, mapping in [
        ("MILP", result.mapping),
        ("GreedyCpu", greedy_cpu(graph, platform)),
        ("GreedyMem", greedy_mem(graph, platform)),
    ]:
        sim = simulate(mapping, n_instances, config)
        rate = sim.steady_state_throughput()
        predicted = analyze(mapping).throughput
        print(
            f"{name:>10}: {rate * 1e6:8.2f} instances/s  "
            f"speed-up {rate / base_rate:5.2f}  "
            f"({rate / predicted * 100:5.1f} % of its model prediction)"
        )


if __name__ == "__main__":
    main(quick="--quick" in sys.argv[1:])
