#!/usr/bin/env python
"""Mapping a real audio encoder on the Cell (the paper's abstract workload).

Builds the MPEG-1 Layer II–style encoder of :mod:`repro.apps.audio_encoder`,
maps it four ways (MILP, both greedy baselines, PPE-only), prints the
per-PE breakdown of the best mapping, renders the first periods of its
steady-state schedule as a Gantt chart (Fig. 3 style), and verifies the
measured throughput on the simulator.

Run:  python examples/audio_encoder_study.py
"""

from repro import CellPlatform, Mapping, analyze, solve_optimal_mapping
from repro.apps import audio_encoder
from repro.graph import graph_stats, to_dot
from repro.heuristics import greedy_cpu, greedy_mem
from repro.simulator import SimConfig, simulate
from repro.steady_state import build_schedule

N_INSTANCES = 2000


def main() -> None:
    graph = audio_encoder(n_filter_groups=4)
    platform = CellPlatform.qs22()
    print(graph_stats(graph))

    milp = solve_optimal_mapping(graph, platform)
    print()
    print("=== optimal mapping (MILP, 5 % gap) ===")
    print(milp.mapping.summary())
    print(analyze(milp.mapping).report())

    print()
    print("=== steady-state schedule (first 8 periods) ===")
    schedule = build_schedule(milp.mapping)
    print(schedule.gantt_text(n_periods=8, width=14))
    print(
        f"warm-up: {schedule.warmup_periods} periods; "
        f"one frame latency: {schedule.stream_latency():.0f} µs"
    )

    print()
    print("=== measured on the simulator (realistic overheads) ===")
    config = SimConfig.realistic()
    baseline = simulate(Mapping.all_on_ppe(graph, platform), N_INSTANCES, config)
    base = baseline.steady_state_throughput()
    for name, mapping in [
        ("MILP", milp.mapping),
        ("GreedyCpu", greedy_cpu(graph, platform)),
        ("GreedyMem", greedy_mem(graph, platform)),
        ("PPE-only", Mapping.all_on_ppe(graph, platform)),
    ]:
        sim = simulate(mapping, N_INSTANCES, config)
        rate = sim.steady_state_throughput()
        print(
            f"{name:>10}: {rate * 1e6:9.1f} frames/s  "
            f"speed-up {rate / base:5.2f}"
        )

    # A DOT rendering coloured by PE, for graphviz users.
    dot_path = "audio_encoder_mapping.dot"
    with open(dot_path, "w") as fh:
        fh.write(to_dot(graph, milp.mapping))
    print(f"\nwrote {dot_path} (render with: dot -Tpng -o mapping.png {dot_path})")


if __name__ == "__main__":
    main()
