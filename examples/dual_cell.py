#!/usr/bin/env python
"""Scheduling across both Cells of the QS22 — the paper's future work.

§6 of the paper restricts itself to one Cell of the QS22 blade and lists
dual-Cell scheduling as an extension ("we would like to be able to use
both Cell processors of the QS22").  This repository implements it: the
second chip adds 1 PPE + 8 SPEs, reachable through the ≈20 GB/s FlexIO/BIF
link, which the MILP models as constraint (X1), the analytic model as
`LinkLoad`, and the simulator as a shared flow port.

The example maps random graph 2 (94 tasks) on one and on two Cells and
reports where the extra silicon helps — and how much data the optimal
mapping pushes through the inter-chip link.

Run:  python examples/dual_cell.py          (takes a couple of minutes —
                                             the dual-Cell MILP has 18 PEs)
      python examples/dual_cell.py --quick  (small graph, short stream —
                                             the mode the test suite runs)
"""

import sys

from repro import CellPlatform, Mapping, solve_optimal_mapping
from repro.apps import crypto_pipeline
from repro.generator import random_graph_2
from repro.simulator import SimConfig, simulate
from repro.steady_state import analyze

N_INSTANCES = 600


def main(quick: bool = False) -> None:
    if quick:
        graph, n_instances, time_limit = crypto_pipeline(), 150, 20.0
    else:
        graph, n_instances, time_limit = random_graph_2(), N_INSTANCES, 180.0
    config = SimConfig.realistic()

    single = CellPlatform.qs22()
    dual = CellPlatform.qs22_dual()

    baseline = simulate(
        Mapping.all_on_ppe(graph, single), n_instances, config
    ).steady_state_throughput()

    for label, platform in [("single Cell (1+8)", single), ("dual Cell (2+16)", dual)]:
        result = solve_optimal_mapping(graph, platform, time_limit=time_limit)
        analysis = analyze(result.mapping)
        sim = simulate(result.mapping, n_instances, config)
        rate = sim.steady_state_throughput()
        print(f"=== {label} ===")
        print(f"  predicted period   : {result.period:10.1f} µs")
        print(f"  measured throughput: {rate * 1e6:10.1f} instances/s")
        print(f"  speed-up vs 1 PPE  : {rate / baseline:10.2f}x")
        if analysis.link_loads:
            for link in analysis.link_loads:
                print(
                    f"  BIF link {link.src_cell}->{link.dst_cell}: "
                    f"{link.time:.2f} µs/instance "
                    f"({link.time / result.period * 100:.1f} % of the period)"
                )
        else:
            print("  BIF link unused")
        print()


if __name__ == "__main__":
    main(quick="--quick" in sys.argv[1:])
